// Client half of the serving protocol: a typed request/response API
// over any Stream, mirroring the QueryEngine surface one-to-one so
// callers (ccq_client, the closed-loop bench) can swap between
// in-process and over-the-wire serving without changing shape.
//
// A Client owns one connection and is strictly sequential (one frame in
// flight); use one Client per concurrent worker.  Server-reported
// failures throw rpc_error (carrying the status), transport failures
// throw net_error, and undecodable responses throw protocol_error.
#ifndef CCQ_NET_CLIENT_HPP
#define CCQ_NET_CLIENT_HPP

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ccq/net/protocol.hpp"
#include "ccq/net/socket.hpp"

namespace ccq {

class Client {
public:
    /// Wraps an already-connected stream (socketpair, stdio, ...).
    explicit Client(std::unique_ptr<Stream> stream);

    /// Connects over TCP ("localhost" or a numeric IPv4 address).
    [[nodiscard]] static Client connect(const std::string& host, int port);

    /// Liveness probe; returns the server's protocol version.
    std::uint32_t ping();

    [[nodiscard]] Weight distance(NodeId from, NodeId to);
    [[nodiscard]] PathResult path(NodeId from, NodeId to);
    [[nodiscard]] std::vector<NearTarget> nearest_targets(NodeId from, int k);
    [[nodiscard]] std::vector<Weight> batch_distances(std::span<const PointQuery> queries);
    [[nodiscard]] std::vector<PathResult> batch_paths(std::span<const PointQuery> queries);
    [[nodiscard]] ServerStats stats();

    /// Asks the server to shut down gracefully; returns once acknowledged.
    /// Token-protected servers (ccq_served --shutdown-token) answer
    /// rpc_error(Status::forbidden) unless `token` matches.
    void shutdown_server(const std::string& token = {});

    /// JSON debug mode passthrough: sends `json` (must be one object) as
    /// a frame and returns the server's JSON reply verbatim.
    [[nodiscard]] std::string json_request(const std::string& json);

private:
    /// Sends one request frame and returns the ok payload of the reply.
    [[nodiscard]] std::string roundtrip(const Request& request);

    std::unique_ptr<Stream> stream_;
};

} // namespace ccq

#endif // CCQ_NET_CLIENT_HPP
