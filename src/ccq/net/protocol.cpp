#include "ccq/net/protocol.hpp"

#include <cctype>
#include <cstdio>
#include <limits>
#include <utility>

#include "ccq/common/bytes.hpp"

namespace ccq {
namespace {

/// Wraps ByteReader truncation errors with protocol context.
template <class Fn>
[[nodiscard]] auto decoding(const char* what, Fn&& fn) -> decltype(fn())
{
    try {
        return fn();
    } catch (const decode_error& error) {
        throw protocol_error(std::string(what) + ": " + error.what());
    }
}

void put_point_query(std::string& out, const PointQuery& q)
{
    put_i32(out, q.from);
    put_i32(out, q.to);
}

void put_path_result(std::string& out, const PathResult& path)
{
    put_u8(out, path.reachable ? 1 : 0);
    put_i64(out, path.distance);
    put_u32(out, static_cast<std::uint32_t>(path.nodes.size()));
    for (const NodeId v : path.nodes) put_i32(out, v);
}

[[nodiscard]] PathResult read_path_result(ByteReader& reader)
{
    PathResult path;
    const std::uint8_t reachable = reader.u8();
    if (reachable > 1) throw protocol_error("path reply: malformed reachable flag");
    path.reachable = reachable == 1;
    path.distance = reader.i64();
    const std::uint32_t count = reader.u32();
    // Each node costs 4 bytes: prove they exist before allocating.
    if (count > reader.remaining() / 4)
        throw protocol_error("path reply: node count exceeds frame");
    path.nodes.resize(count);
    for (NodeId& v : path.nodes) v = reader.i32();
    return path;
}

} // namespace

std::size_t op_metric_index(Opcode op) noexcept
{
    switch (op) {
    case Opcode::ping: return 0;
    case Opcode::distance: return 1;
    case Opcode::path: return 2;
    case Opcode::k_nearest: return 3;
    case Opcode::batch_distances: return 4;
    case Opcode::batch_paths: return 5;
    case Opcode::stats: return 6;
    case Opcode::metrics: return 7;
    case Opcode::shutdown: return 8;
    case Opcode::flight: return 9;
    case Opcode::json: break; // JSON bodies resolve to a real op before accounting
    }
    return kInvalidOpMetric;
}

const char* op_metric_name(std::size_t index) noexcept
{
    static constexpr const char* kNames[kOpMetricCount] = {
        "ping",        "distance", "path",    "k_nearest", "batch_distances",
        "batch_paths", "stats",    "metrics", "shutdown",  "flight",
        "invalid",
    };
    return index < kOpMetricCount ? kNames[index] : "invalid";
}

const char* status_name(Status status)
{
    switch (status) {
    case Status::ok: return "ok";
    case Status::malformed: return "malformed";
    case Status::out_of_range: return "out_of_range";
    case Status::unsupported: return "unsupported";
    case Status::shutting_down: return "shutting_down";
    case Status::internal: return "internal";
    case Status::forbidden: return "forbidden";
    case Status::busy: return "busy";
    }
    return "unknown";
}

// --- framing ----------------------------------------------------------------

std::string encode_frame(std::string_view body)
{
    if (body.size() > kMaxFrameBytes) throw protocol_error("encode_frame: body too large");
    std::string frame;
    frame.reserve(4 + body.size());
    put_u32(frame, static_cast<std::uint32_t>(body.size()));
    frame.append(body);
    return frame;
}

void write_frame(Stream& stream, std::string_view body)
{
    // One write per frame keeps concurrent writers (none today, but the
    // Stream contract allows them) from interleaving header and body.
    const std::string frame = encode_frame(body);
    stream.write_all(frame.data(), frame.size());
}

std::optional<std::string> read_frame(Stream& stream)
{
    char prefix[4];
    if (!stream.read_exact(prefix, sizeof(prefix))) return std::nullopt;
    ByteReader reader(std::string_view(prefix, sizeof(prefix)));
    const std::uint32_t length = reader.u32();
    if (length > kMaxFrameBytes)
        throw protocol_error("read_frame: frame of " + std::to_string(length) +
                             " bytes exceeds the " + std::to_string(kMaxFrameBytes) +
                             "-byte limit");
    std::string body(length, '\0');
    if (length > 0 && !stream.read_exact(body.data(), body.size()))
        throw net_error("connection closed mid-message");
    return body;
}

void FrameDecoder::feed(std::string_view bytes)
{
    // Compact before growing: once everything buffered has been consumed
    // (the steady state between frames) the buffer restarts from zero, so
    // a long-lived connection never accumulates dead prefix bytes.
    if (pos_ == buffer_.size()) {
        buffer_.clear();
        pos_ = 0;
    } else if (pos_ >= 64 * 1024) {
        buffer_.erase(0, pos_);
        pos_ = 0;
    }
    buffer_.append(bytes);
}

std::optional<std::string> FrameDecoder::next()
{
    if (buffer_.size() - pos_ < 4) return std::nullopt;
    std::uint32_t length = 0;
    for (int i = 0; i < 4; ++i)
        length |= static_cast<std::uint32_t>(
                      static_cast<unsigned char>(buffer_[pos_ + static_cast<std::size_t>(i)]))
                  << (8 * i);
    if (length > kMaxFrameBytes)
        throw protocol_error("frame of " + std::to_string(length) + " bytes exceeds the " +
                             std::to_string(kMaxFrameBytes) + "-byte limit");
    if (buffer_.size() - pos_ - 4 < length) return std::nullopt;
    std::string body = buffer_.substr(pos_ + 4, length);
    pos_ += 4 + static_cast<std::size_t>(length);
    return body;
}

// --- trace envelope ---------------------------------------------------------

std::string wrap_trace_envelope(const TraceContext& context, std::string_view body)
{
    std::string out;
    out.reserve(10 + body.size());
    put_u8(out, kTraceEnvelopeMarker);
    put_u64(out, context.trace_id);
    put_u8(out, context.sampled ? 1 : 0);
    out.append(body);
    return out;
}

std::optional<TraceContext> split_trace_envelope(std::string_view& body)
{
    if (body.empty() || static_cast<std::uint8_t>(body.front()) != kTraceEnvelopeMarker)
        return std::nullopt;
    return decoding("trace envelope", [&]() -> std::optional<TraceContext> {
        ByteReader reader(body);
        (void)reader.u8(); // marker
        TraceContext context;
        context.trace_id = reader.u64();
        const std::uint8_t flags = reader.u8();
        if ((flags & ~std::uint8_t{1}) != 0)
            throw protocol_error("trace envelope: unknown flag bits");
        context.sampled = (flags & 1) != 0;
        body.remove_prefix(10);
        return context;
    });
}

// --- request bodies ---------------------------------------------------------

std::string encode_request(const Request& request)
{
    std::string body;
    put_u8(body, static_cast<std::uint8_t>(request.op));
    switch (request.op) {
    case Opcode::ping:
    case Opcode::stats:
    case Opcode::metrics:
    case Opcode::flight: break;
    case Opcode::shutdown:
        // Token operand, omitted entirely when empty so unauthenticated
        // frames keep the pre-token wire shape (old servers reject a
        // token-bearing frame as trailing bytes, which is the correct
        // failure for version skew).
        if (!request.token.empty()) put_string(body, request.token);
        break;
    case Opcode::distance:
    case Opcode::path:
        put_i32(body, request.from);
        put_i32(body, request.to);
        break;
    case Opcode::k_nearest:
        put_i32(body, request.from);
        put_i32(body, request.k);
        break;
    case Opcode::batch_distances:
    case Opcode::batch_paths:
        put_u32(body, static_cast<std::uint32_t>(request.pairs.size()));
        for (const PointQuery& q : request.pairs) put_point_query(body, q);
        break;
    case Opcode::json: throw protocol_error("encode_request: use the JSON text directly");
    }
    return body;
}

Request decode_request(std::string_view body)
{
    return decoding("request", [&] {
        if (!body.empty() && body.front() == '{') return parse_json_request(body);
        ByteReader reader(body);
        Request request;
        const std::uint8_t op = reader.u8();
        switch (static_cast<Opcode>(op)) {
        case Opcode::ping:
        case Opcode::stats:
        case Opcode::metrics:
        case Opcode::flight: break;
        case Opcode::shutdown:
            if (!reader.exhausted()) request.token = reader.str();
            break;
        case Opcode::distance:
        case Opcode::path:
            request.from = reader.i32();
            request.to = reader.i32();
            break;
        case Opcode::k_nearest:
            request.from = reader.i32();
            request.k = reader.i32();
            break;
        case Opcode::batch_distances:
        case Opcode::batch_paths: {
            const std::uint32_t count = reader.u32();
            if (count > reader.remaining() / 8)
                throw protocol_error("batch request: pair count exceeds frame");
            request.pairs.resize(count);
            for (PointQuery& q : request.pairs) {
                q.from = reader.i32();
                q.to = reader.i32();
            }
            break;
        }
        case Opcode::json: // '{' is handled above; a bare 0x7b opcode is bogus
        default:
            throw protocol_error("unknown opcode " + std::to_string(op));
        }
        request.op = static_cast<Opcode>(op);
        if (!reader.exhausted()) throw protocol_error("request has trailing bytes");
        return request;
    });
}

// --- response bodies --------------------------------------------------------

std::string encode_error_reply(Status status, std::string_view message)
{
    CCQ_EXPECT(status != Status::ok, "encode_error_reply: ok is not an error");
    std::string body;
    put_u8(body, static_cast<std::uint8_t>(status));
    put_string(body, message);
    return body;
}

namespace {
[[nodiscard]] std::string ok_body()
{
    std::string body;
    put_u8(body, static_cast<std::uint8_t>(Status::ok));
    return body;
}
} // namespace

std::string encode_ok_reply() { return ok_body(); }

std::string encode_ping_reply()
{
    std::string body = ok_body();
    put_u32(body, kProtocolVersion);
    return body;
}

std::string encode_distance_reply(Weight distance)
{
    std::string body = ok_body();
    put_i64(body, distance);
    return body;
}

std::string encode_path_reply(const PathResult& path)
{
    std::string body = ok_body();
    put_path_result(body, path);
    return body;
}

std::string encode_nearest_reply(std::span<const NearTarget> targets)
{
    std::string body = ok_body();
    put_u32(body, static_cast<std::uint32_t>(targets.size()));
    for (const NearTarget& t : targets) {
        put_i32(body, t.node);
        put_i64(body, t.distance);
    }
    return body;
}

std::string encode_batch_distances_reply(std::span<const Weight> distances)
{
    std::string body = ok_body();
    put_u32(body, static_cast<std::uint32_t>(distances.size()));
    for (const Weight d : distances) put_i64(body, d);
    return body;
}

std::string encode_batch_paths_reply(std::span<const PathResult> paths)
{
    std::string body = ok_body();
    put_u32(body, static_cast<std::uint32_t>(paths.size()));
    for (const PathResult& p : paths) put_path_result(body, p);
    return body;
}

std::string encode_stats_reply(const ServerStats& stats)
{
    std::string body = ok_body();
    put_u64(body, stats.connections_accepted);
    put_u64(body, stats.connections_rejected);
    put_u64(body, stats.active_connections);
    put_u64(body, stats.frames_served);
    put_u64(body, stats.errors);
    put_u64(body, stats.distance_queries);
    put_u64(body, stats.path_queries);
    put_u64(body, stats.knearest_queries);
    put_u64(body, stats.batch_items);
    put_u64(body, stats.cache_hits);
    put_u64(body, stats.cache_misses);
    put_f64(body, stats.uptime_seconds);
    put_i32(body, stats.node_count);
    put_u8(body, stats.has_routing ? 1 : 0);
    // stats v2 trailer (decoders accept replies that stop above).
    put_u64(body, stats.backpressure_pauses);
    put_f64(body, stats.build_total_rounds);
    put_u64(body, stats.build_total_words);
    // stats v3 trailer: the serving source's identity and row work.
    put_u8(body, stats.source_kind);
    put_u64(body, stats.stored_cells);
    put_u64(body, stats.rows_materialized);
    return body;
}

std::string encode_metrics_reply(std::string_view text)
{
    // The payload is the raw UTF-8 exposition text: the frame length
    // already delimits it, so no string prefix is needed.
    std::string body = ok_body();
    body.append(text);
    return body;
}

std::string encode_flight_reply(std::span<const obs::RequestRecord> records)
{
    std::string body = ok_body();
    put_u32(body, static_cast<std::uint32_t>(records.size()));
    for (const obs::RequestRecord& rec : records) {
        put_u64(body, rec.seq);
        put_u64(body, rec.trace_id);
        put_u64(body, rec.conn_id);
        put_u8(body, rec.opcode);
        put_u8(body, rec.status);
        put_u8(body, rec.sampled ? 1 : 0);
        put_u32(body, rec.request_bytes);
        put_u32(body, rec.reply_bytes);
        put_u32(body, rec.decode_us);
        put_u32(body, rec.queue_us);
        put_u32(body, rec.execute_us);
        put_u32(body, rec.encode_us);
        put_u32(body, rec.flush_us);
    }
    return body;
}

std::pair<Status, std::string_view> split_reply(std::string_view body)
{
    if (body.empty()) throw protocol_error("empty response body");
    const std::uint8_t status = static_cast<std::uint8_t>(body.front());
    if (status > static_cast<std::uint8_t>(Status::busy))
        throw protocol_error("unknown response status " + std::to_string(status));
    return {static_cast<Status>(status), body.substr(1)};
}

std::uint32_t decode_ping_reply(std::string_view payload)
{
    return decoding("ping reply", [&] {
        ByteReader reader(payload);
        const std::uint32_t version = reader.u32();
        if (!reader.exhausted()) throw protocol_error("ping reply has trailing bytes");
        return version;
    });
}

Weight decode_distance_reply(std::string_view payload)
{
    return decoding("distance reply", [&] {
        ByteReader reader(payload);
        const Weight distance = reader.i64();
        if (!reader.exhausted()) throw protocol_error("distance reply has trailing bytes");
        return distance;
    });
}

PathResult decode_path_reply(std::string_view payload)
{
    return decoding("path reply", [&] {
        ByteReader reader(payload);
        PathResult path = read_path_result(reader);
        if (!reader.exhausted()) throw protocol_error("path reply has trailing bytes");
        return path;
    });
}

std::vector<NearTarget> decode_nearest_reply(std::string_view payload)
{
    return decoding("k-nearest reply", [&] {
        ByteReader reader(payload);
        const std::uint32_t count = reader.u32();
        if (count > reader.remaining() / 12)
            throw protocol_error("k-nearest reply: count exceeds frame");
        std::vector<NearTarget> targets(count);
        for (NearTarget& t : targets) {
            t.node = reader.i32();
            t.distance = reader.i64();
        }
        if (!reader.exhausted()) throw protocol_error("k-nearest reply has trailing bytes");
        return targets;
    });
}

std::vector<Weight> decode_batch_distances_reply(std::string_view payload)
{
    return decoding("batch distances reply", [&] {
        ByteReader reader(payload);
        const std::uint32_t count = reader.u32();
        if (count > reader.remaining() / 8)
            throw protocol_error("batch distances reply: count exceeds frame");
        std::vector<Weight> distances(count);
        for (Weight& d : distances) d = reader.i64();
        if (!reader.exhausted())
            throw protocol_error("batch distances reply has trailing bytes");
        return distances;
    });
}

std::vector<PathResult> decode_batch_paths_reply(std::string_view payload)
{
    return decoding("batch paths reply", [&] {
        ByteReader reader(payload);
        const std::uint32_t count = reader.u32();
        // Each path costs at least 13 bytes (flag + distance + count).
        if (count > reader.remaining() / 13)
            throw protocol_error("batch paths reply: count exceeds frame");
        std::vector<PathResult> paths(count);
        for (PathResult& p : paths) p = read_path_result(reader);
        if (!reader.exhausted()) throw protocol_error("batch paths reply has trailing bytes");
        return paths;
    });
}

ServerStats decode_stats_reply(std::string_view payload)
{
    return decoding("stats reply", [&] {
        ByteReader reader(payload);
        ServerStats stats;
        stats.connections_accepted = reader.u64();
        stats.connections_rejected = reader.u64();
        stats.active_connections = reader.u64();
        stats.frames_served = reader.u64();
        stats.errors = reader.u64();
        stats.distance_queries = reader.u64();
        stats.path_queries = reader.u64();
        stats.knearest_queries = reader.u64();
        stats.batch_items = reader.u64();
        stats.cache_hits = reader.u64();
        stats.cache_misses = reader.u64();
        stats.uptime_seconds = reader.f64();
        stats.node_count = reader.i32();
        const std::uint8_t routing = reader.u8();
        if (routing > 1) throw protocol_error("stats reply: malformed routing flag");
        stats.has_routing = routing == 1;
        // stats v2 trailer: a pre-PR6 server's reply ends here, which
        // must keep decoding (back-compat), leaving the defaults.
        if (!reader.exhausted()) {
            stats.backpressure_pauses = reader.u64();
            stats.build_total_rounds = reader.f64();
            stats.build_total_words = reader.u64();
        }
        // stats v3 trailer: nested so a v2 server's reply (ending just
        // above) still decodes with the defaults.
        if (!reader.exhausted()) {
            stats.source_kind = reader.u8();
            stats.stored_cells = reader.u64();
            stats.rows_materialized = reader.u64();
        }
        if (!reader.exhausted()) throw protocol_error("stats reply has trailing bytes");
        return stats;
    });
}

std::string decode_metrics_reply(std::string_view payload)
{
    return std::string(payload);
}

std::vector<obs::RequestRecord> decode_flight_reply(std::string_view payload)
{
    return decoding("flight reply", [&] {
        ByteReader reader(payload);
        const std::uint32_t count = reader.u32();
        // Each record costs exactly 55 bytes on the wire.
        if (count > reader.remaining() / 55)
            throw protocol_error("flight reply: record count exceeds frame");
        std::vector<obs::RequestRecord> records(count);
        for (obs::RequestRecord& rec : records) {
            rec.seq = reader.u64();
            rec.trace_id = reader.u64();
            rec.conn_id = reader.u64();
            rec.opcode = reader.u8();
            rec.status = reader.u8();
            const std::uint8_t sampled = reader.u8();
            if (sampled > 1) throw protocol_error("flight reply: malformed sampled flag");
            rec.sampled = sampled == 1;
            rec.request_bytes = reader.u32();
            rec.reply_bytes = reader.u32();
            rec.decode_us = reader.u32();
            rec.queue_us = reader.u32();
            rec.execute_us = reader.u32();
            rec.encode_us = reader.u32();
            rec.flush_us = reader.u32();
        }
        if (!reader.exhausted()) throw protocol_error("flight reply has trailing bytes");
        return records;
    });
}

// --- JSON debug mode --------------------------------------------------------
//
// The grammar is deliberately tiny: one flat object, string or integer
// values, plus "pairs":[[u,v],...] for batches.  It exists for humans
// poking the server with netcat-style tools, not as a general JSON
// implementation.

namespace {

class JsonCursor {
public:
    explicit JsonCursor(std::string_view text) : text_(text) {}

    void skip_ws()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)
            ++pos_;
    }

    [[nodiscard]] bool consume(char c)
    {
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void expect(char c)
    {
        if (!consume(c))
            throw protocol_error(std::string("json request: expected '") + c + "'");
    }

    [[nodiscard]] std::string string_value()
    {
        expect('"');
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\')
                throw protocol_error("json request: escapes are not supported");
            out += text_[pos_++];
        }
        expect('"');
        return out;
    }

    [[nodiscard]] long long number_value()
    {
        skip_ws();
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)
            ++pos_;
        if (pos_ == start || (text_[start] == '-' && pos_ == start + 1))
            throw protocol_error("json request: expected a number");
        try {
            return std::stoll(std::string(text_.substr(start, pos_ - start)));
        } catch (const std::out_of_range&) {
            // Must surface as a malformed-status reply, not tear the
            // connection down (serve_one only catches protocol_error
            // at the decode stage).
            throw protocol_error("json request: number out of range");
        }
    }

    /// A number that must fit the wire's i32 fields (node ids, k): a
    /// silent narrowing cast would alias an out-of-range id onto a valid
    /// node and serve a wrong answer instead of out_of_range.
    [[nodiscard]] std::int32_t i32_value(const char* what)
    {
        const long long value = number_value();
        if (value < std::numeric_limits<std::int32_t>::min() ||
            value > std::numeric_limits<std::int32_t>::max())
            throw protocol_error(std::string("json request: \"") + what +
                                 "\" does not fit 32 bits");
        return static_cast<std::int32_t>(value);
    }

    [[nodiscard]] std::vector<PointQuery> pairs_value()
    {
        expect('[');
        std::vector<PointQuery> pairs;
        if (consume(']')) return pairs;
        do {
            expect('[');
            PointQuery q;
            q.from = i32_value("pairs");
            expect(',');
            q.to = i32_value("pairs");
            expect(']');
            pairs.push_back(q);
        } while (consume(','));
        expect(']');
        return pairs;
    }

    [[nodiscard]] bool at_end()
    {
        skip_ws();
        return pos_ == text_.size();
    }

private:
    std::string_view text_;
    std::size_t pos_ = 0;
};

[[nodiscard]] Opcode opcode_from_name(const std::string& name)
{
    if (name == "ping") return Opcode::ping;
    if (name == "distance") return Opcode::distance;
    if (name == "path") return Opcode::path;
    if (name == "k_nearest") return Opcode::k_nearest;
    if (name == "batch_distances") return Opcode::batch_distances;
    if (name == "batch_paths") return Opcode::batch_paths;
    if (name == "stats") return Opcode::stats;
    if (name == "metrics") return Opcode::metrics;
    if (name == "flight") return Opcode::flight;
    if (name == "shutdown") return Opcode::shutdown;
    throw protocol_error("json request: unknown op '" + name + "'");
}

} // namespace

Request parse_json_request(std::string_view body)
{
    JsonCursor cursor(body);
    cursor.expect('{');
    Request request;
    request.json = true;
    bool have_op = false;
    if (!cursor.consume('}')) {
        do {
            const std::string key = cursor.string_value();
            cursor.expect(':');
            if (key == "op") {
                request.op = opcode_from_name(cursor.string_value());
                have_op = true;
            } else if (key == "from") {
                request.from = cursor.i32_value("from");
            } else if (key == "to") {
                request.to = cursor.i32_value("to");
            } else if (key == "k") {
                request.k = cursor.i32_value("k");
            } else if (key == "pairs") {
                request.pairs = cursor.pairs_value();
            } else if (key == "token") {
                request.token = cursor.string_value();
            } else {
                throw protocol_error("json request: unknown key '" + key + "'");
            }
        } while (cursor.consume(','));
        cursor.expect('}');
    }
    if (!cursor.at_end()) throw protocol_error("json request: trailing characters");
    if (!have_op) throw protocol_error("json request: missing \"op\"");
    return request;
}

std::string json_escape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buffer[8];
            std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
            out += buffer;
        } else {
            out += c;
        }
    }
    return out;
}

} // namespace ccq
