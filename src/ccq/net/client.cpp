#include "ccq/net/client.hpp"

#include <utility>

#include "ccq/common/bytes.hpp"
#include "ccq/common/check.hpp"

namespace ccq {

Client::Client(std::unique_ptr<Stream> stream) : stream_(std::move(stream))
{
    CCQ_EXPECT(stream_ != nullptr, "Client: null stream");
}

Client Client::connect(const std::string& host, int port)
{
    return Client(TcpStream::connect(host, port));
}

std::string Client::roundtrip(const Request& request)
{
    write_frame(*stream_, encode_request(request));
    std::optional<std::string> reply = read_frame(*stream_);
    if (!reply.has_value()) throw net_error("server closed the connection");
    const auto [status, payload] = split_reply(*reply);
    if (status != Status::ok) {
        std::string message;
        try {
            ByteReader reader(payload);
            message = reader.str();
        } catch (const decode_error&) {
            message = "(garbled error message)";
        }
        throw rpc_error(status, message);
    }
    return std::string(payload);
}

std::uint32_t Client::ping()
{
    Request request;
    request.op = Opcode::ping;
    return decode_ping_reply(roundtrip(request));
}

Weight Client::distance(NodeId from, NodeId to)
{
    Request request;
    request.op = Opcode::distance;
    request.from = from;
    request.to = to;
    return decode_distance_reply(roundtrip(request));
}

PathResult Client::path(NodeId from, NodeId to)
{
    Request request;
    request.op = Opcode::path;
    request.from = from;
    request.to = to;
    return decode_path_reply(roundtrip(request));
}

std::vector<NearTarget> Client::nearest_targets(NodeId from, int k)
{
    Request request;
    request.op = Opcode::k_nearest;
    request.from = from;
    request.k = k;
    return decode_nearest_reply(roundtrip(request));
}

namespace {

/// The reply's element count is server-controlled: callers index the
/// result by their own query count, so a short reply must fail here,
/// not as an out-of-bounds read later.
template <class T>
void check_batch_size(const std::vector<T>& results, std::size_t expected)
{
    if (results.size() != expected)
        throw protocol_error("batch reply has " + std::to_string(results.size()) +
                             " results for " + std::to_string(expected) + " queries");
}

} // namespace

std::vector<Weight> Client::batch_distances(std::span<const PointQuery> queries)
{
    Request request;
    request.op = Opcode::batch_distances;
    request.pairs.assign(queries.begin(), queries.end());
    std::vector<Weight> distances = decode_batch_distances_reply(roundtrip(request));
    check_batch_size(distances, queries.size());
    return distances;
}

std::vector<PathResult> Client::batch_paths(std::span<const PointQuery> queries)
{
    Request request;
    request.op = Opcode::batch_paths;
    request.pairs.assign(queries.begin(), queries.end());
    std::vector<PathResult> paths = decode_batch_paths_reply(roundtrip(request));
    check_batch_size(paths, queries.size());
    return paths;
}

ServerStats Client::stats()
{
    Request request;
    request.op = Opcode::stats;
    return decode_stats_reply(roundtrip(request));
}

void Client::shutdown_server(const std::string& token)
{
    Request request;
    request.op = Opcode::shutdown;
    request.token = token;
    (void)roundtrip(request);
}

std::string Client::json_request(const std::string& json)
{
    CCQ_EXPECT(!json.empty() && json.front() == '{',
               "Client::json_request: body must be a JSON object");
    write_frame(*stream_, json);
    std::optional<std::string> reply = read_frame(*stream_);
    if (!reply.has_value()) throw net_error("server closed the connection");
    return *reply;
}

} // namespace ccq
