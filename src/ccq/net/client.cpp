#include "ccq/net/client.hpp"

#include <utility>

#include "ccq/common/bytes.hpp"
#include "ccq/common/check.hpp"

namespace ccq {

Client::Client(std::unique_ptr<Stream> stream) : stream_(std::move(stream))
{
    CCQ_EXPECT(stream_ != nullptr, "Client: null stream");
}

Client Client::connect(const std::string& host, int port)
{
    return Client(TcpStream::connect(host, port));
}

std::string Client::request_body(const Request& request)
{
    std::string body = encode_request(request);
    if (trace_enabled_)
        body = wrap_trace_envelope(TraceContext{next_trace_id_++, trace_sampled_}, body);
    return body;
}

std::string Client::roundtrip(const Request& request)
{
    write_frame(*stream_, request_body(request));
    std::optional<std::string> reply = read_frame(*stream_);
    if (!reply.has_value()) throw net_error("server closed the connection");
    const auto [status, payload] = split_reply(*reply);
    if (status != Status::ok) {
        std::string message;
        try {
            ByteReader reader(payload);
            message = reader.str();
        } catch (const decode_error&) {
            message = "(garbled error message)";
        }
        throw rpc_error(status, message);
    }
    return std::string(payload);
}

std::uint32_t Client::ping()
{
    Request request;
    request.op = Opcode::ping;
    return decode_ping_reply(roundtrip(request));
}

Weight Client::distance(NodeId from, NodeId to)
{
    Request request;
    request.op = Opcode::distance;
    request.from = from;
    request.to = to;
    return decode_distance_reply(roundtrip(request));
}

PathResult Client::path(NodeId from, NodeId to)
{
    Request request;
    request.op = Opcode::path;
    request.from = from;
    request.to = to;
    return decode_path_reply(roundtrip(request));
}

std::vector<NearTarget> Client::nearest_targets(NodeId from, int k)
{
    Request request;
    request.op = Opcode::k_nearest;
    request.from = from;
    request.k = k;
    return decode_nearest_reply(roundtrip(request));
}

namespace {

/// The reply's element count is server-controlled: callers index the
/// result by their own query count, so a short reply must fail here,
/// not as an out-of-bounds read later.
template <class T>
void check_batch_size(const std::vector<T>& results, std::size_t expected)
{
    if (results.size() != expected)
        throw protocol_error("batch reply has " + std::to_string(results.size()) +
                             " results for " + std::to_string(expected) + " queries");
}

} // namespace

std::vector<Weight> Client::batch_distances(std::span<const PointQuery> queries)
{
    Request request;
    request.op = Opcode::batch_distances;
    request.pairs.assign(queries.begin(), queries.end());
    std::vector<Weight> distances = decode_batch_distances_reply(roundtrip(request));
    check_batch_size(distances, queries.size());
    return distances;
}

std::vector<PathResult> Client::batch_paths(std::span<const PointQuery> queries)
{
    Request request;
    request.op = Opcode::batch_paths;
    request.pairs.assign(queries.begin(), queries.end());
    std::vector<PathResult> paths = decode_batch_paths_reply(roundtrip(request));
    check_batch_size(paths, queries.size());
    return paths;
}

ServerStats Client::stats()
{
    Request request;
    request.op = Opcode::stats;
    return decode_stats_reply(roundtrip(request));
}

std::string Client::metrics()
{
    Request request;
    request.op = Opcode::metrics;
    return decode_metrics_reply(roundtrip(request));
}

std::vector<obs::RequestRecord> Client::flight_records()
{
    Request request;
    request.op = Opcode::flight;
    return decode_flight_reply(roundtrip(request));
}

namespace {

[[nodiscard]] std::string error_message_of(std::string_view payload)
{
    try {
        ByteReader reader(payload);
        return reader.str();
    } catch (const decode_error&) {
        return "(garbled error message)";
    }
}

/// The shared pipelining engine: keeps up to `window` frames in flight,
/// coalescing each window top-up into one write, and consumes replies in
/// arrival order.  After a non-ok reply the remaining in-flight replies
/// are drained so the connection ends at a frame boundary, then the
/// first error is thrown.
template <class EncodeBody, class MakeRequest, class OnPayload>
void run_pipeline(Stream& stream, std::size_t count, int window, EncodeBody encode_body,
                  MakeRequest make_request, OnPayload on_payload)
{
    CCQ_EXPECT(window >= 1, "pipelined batch: window must be >= 1");
    std::size_t sent = 0;
    std::size_t received = 0;
    std::optional<std::pair<Status, std::string>> failure;
    std::string burst;
    while (failure.has_value() ? received < sent : received < count) {
        if (!failure.has_value()) {
            burst.clear();
            while (sent < count && sent - received < static_cast<std::size_t>(window)) {
                burst += encode_frame(encode_body(make_request(sent)));
                ++sent;
            }
            if (!burst.empty()) stream.write_all(burst.data(), burst.size());
        }
        std::optional<std::string> reply = read_frame(stream);
        if (!reply.has_value())
            throw net_error("server closed the connection mid-pipeline");
        const std::size_t index = received++;
        const auto [status, payload] = split_reply(*reply);
        if (status != Status::ok) {
            if (!failure.has_value()) failure.emplace(status, error_message_of(payload));
            continue;
        }
        if (!failure.has_value()) on_payload(index, payload);
    }
    if (failure.has_value()) throw rpc_error(failure->first, failure->second);
}

} // namespace

std::vector<Weight> Client::pipelined_distances(std::span<const PointQuery> queries, int window)
{
    std::vector<Weight> distances(queries.size());
    run_pipeline(
        *stream_, queries.size(), window,
        [this](const Request& r) { return request_body(r); },
        [&](std::size_t i) {
            Request request;
            request.op = Opcode::distance;
            request.from = queries[i].from;
            request.to = queries[i].to;
            return request;
        },
        [&](std::size_t i, std::string_view payload) {
            distances[i] = decode_distance_reply(payload);
        });
    return distances;
}

std::vector<PathResult> Client::pipelined_paths(std::span<const PointQuery> queries, int window)
{
    std::vector<PathResult> paths(queries.size());
    run_pipeline(
        *stream_, queries.size(), window,
        [this](const Request& r) { return request_body(r); },
        [&](std::size_t i) {
            Request request;
            request.op = Opcode::path;
            request.from = queries[i].from;
            request.to = queries[i].to;
            return request;
        },
        [&](std::size_t i, std::string_view payload) {
            paths[i] = decode_path_reply(payload);
        });
    return paths;
}

void Client::shutdown_server(const std::string& token)
{
    Request request;
    request.op = Opcode::shutdown;
    request.token = token;
    (void)roundtrip(request);
}

std::string Client::json_request(const std::string& json)
{
    CCQ_EXPECT(!json.empty() && json.front() == '{',
               "Client::json_request: body must be a JSON object");
    write_frame(*stream_, json);
    std::optional<std::string> reply = read_frame(*stream_);
    if (!reply.has_value()) throw net_error("server closed the connection");
    return *reply;
}

// --- ClientPool -------------------------------------------------------------

ClientPool::ClientPool(std::string host, int port, std::size_t max_idle)
    : host_(std::move(host)), port_(port), max_idle_(max_idle)
{
}

ClientPool::Lease ClientPool::acquire()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!idle_.empty()) {
            std::unique_ptr<Client> client = std::move(idle_.back());
            idle_.pop_back();
            return Lease(*this, std::move(client));
        }
    }
    return Lease(*this, std::make_unique<Client>(TcpStream::connect(host_, port_)));
}

std::size_t ClientPool::idle_count() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return idle_.size();
}

void ClientPool::give_back(std::unique_ptr<Client> client) noexcept
{
    try {
        std::lock_guard<std::mutex> lock(mutex_);
        if (idle_.size() < max_idle_) idle_.push_back(std::move(client));
    } catch (...) {
        // Dropping the connection on allocation failure is safe: the
        // pool just dials a fresh one next time.
    }
}

ClientPool::Lease::~Lease()
{
    if (pool_ != nullptr && client_ != nullptr) pool_->give_back(std::move(client_));
}

} // namespace ccq
