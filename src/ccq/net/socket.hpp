// Minimal blocking transport for the serving protocol: a byte-stream
// abstraction plus POSIX TCP and file-descriptor implementations.
//
// The protocol layer (net/protocol.hpp) frames messages over a Stream;
// the Server accepts TcpStreams from a TcpListener or serves a single
// FdStream (stdin/stdout mode).  Everything is blocking — the server
// multiplexes by handing each accepted connection to its own handler —
// and shutdown is cooperative: interrupt() unblocks a peer stuck in
// read()/write() so graceful teardown never hangs.
//
// IPv4 only, numeric addresses plus "localhost"; all errors surface as
// net_error with errno context.
#ifndef CCQ_NET_SOCKET_HPP
#define CCQ_NET_SOCKET_HPP

#include <atomic>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>

namespace ccq {

/// Thrown on transport-level failures (connect/bind/read/write).
class net_error : public std::runtime_error {
public:
    explicit net_error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

/// A blocking, bidirectional byte stream.
class Stream {
public:
    virtual ~Stream() = default;

    /// Reads up to `count` bytes; returns the number read, 0 on clean EOF.
    [[nodiscard]] virtual std::size_t read_some(void* buffer, std::size_t count) = 0;

    /// Writes all `count` bytes (looping over partial writes).
    virtual void write_all(const void* buffer, std::size_t count) = 0;

    /// Unblocks any thread stuck in read_some/write_all on this stream
    /// (best effort; used for graceful server shutdown).
    virtual void interrupt() noexcept = 0;

    /// Reads exactly `count` bytes.  Returns false on clean EOF before the
    /// first byte; throws net_error if the stream ends mid-read.
    [[nodiscard]] bool read_exact(void* buffer, std::size_t count);
};

/// Stream over a pair of plain file descriptors (e.g. stdin/stdout, or a
/// socketpair end).  Never closes borrowed descriptors.
class FdStream : public Stream {
public:
    /// `owns` transfers ownership of both descriptors (close on destroy).
    /// read_fd and write_fd may be equal (a socket) or distinct (pipes).
    FdStream(int read_fd, int write_fd, bool owns);
    ~FdStream() override;
    FdStream(const FdStream&) = delete;
    FdStream& operator=(const FdStream&) = delete;

    [[nodiscard]] std::size_t read_some(void* buffer, std::size_t count) override;
    void write_all(const void* buffer, std::size_t count) override;
    void interrupt() noexcept override;

private:
    int read_fd_;
    int write_fd_;
    bool owns_;
};

/// A connected TCP socket.
class TcpStream : public Stream {
public:
    explicit TcpStream(int fd); ///< takes ownership of a connected socket
    ~TcpStream() override;
    TcpStream(const TcpStream&) = delete;
    TcpStream& operator=(const TcpStream&) = delete;

    /// Connects to host:port ("localhost" or a numeric IPv4 address).
    [[nodiscard]] static std::unique_ptr<TcpStream> connect(const std::string& host, int port);

    [[nodiscard]] std::size_t read_some(void* buffer, std::size_t count) override;
    void write_all(const void* buffer, std::size_t count) override;
    void interrupt() noexcept override;

    /// The raw descriptor (still owned by this stream) — for callers
    /// that multiplex many streams through a readiness API.
    [[nodiscard]] int native_handle() const noexcept { return fd_; }

    /// Switches the socket between blocking (default) and nonblocking.
    void set_nonblocking(bool nonblocking);

    /// Gives up ownership of the descriptor: returns it and leaves the
    /// stream empty (the destructor then closes nothing).  For callers
    /// that keep only the fd, like the epoll connection table.
    [[nodiscard]] int release_fd() noexcept
    {
        const int fd = fd_;
        fd_ = -1;
        return fd;
    }

private:
    int fd_;
};

/// Sets O_NONBLOCK on any descriptor; throws net_error on failure.
void set_fd_nonblocking(int fd, bool nonblocking);

/// Best-effort bump of RLIMIT_NOFILE so `need` descriptors fit (load
/// generators and the >=1k-connection tests need more than the common
/// 1024 soft default).  Returns true when the limit already suffices or
/// was raised; never throws — callers surface EMFILE naturally later.
bool raise_fd_limit(std::size_t need) noexcept;

/// A listening TCP socket (SO_REUSEADDR; port 0 picks an ephemeral port).
class TcpListener {
public:
    TcpListener(const std::string& host, int port);
    ~TcpListener();
    TcpListener(const TcpListener&) = delete;
    TcpListener& operator=(const TcpListener&) = delete;

    /// The bound port (useful after binding port 0).
    [[nodiscard]] int port() const noexcept { return port_; }

    /// Blocks for the next connection; returns nullptr once close() has
    /// been called (from any thread, including a signal handler).
    /// Transient resource exhaustion (EMFILE/ENFILE) throws net_error;
    /// servers that must keep listening use accept_transient instead.
    [[nodiscard]] std::unique_ptr<TcpStream> accept();

    /// accept() that classifies failures instead of tearing down:
    /// returns a stream on success; nullptr with transient_errno == 0
    /// once close() has been called; nullptr with transient_errno set to
    /// EMFILE/ENFILE when the process/system is out of descriptors (the
    /// caller logs, sheds, or backs off — the listener stays usable).
    /// ECONNABORTED/EINTR are retried internally; anything else throws.
    [[nodiscard]] std::unique_ptr<TcpStream> accept_transient(int& transient_errno);

    /// Unblocks accept() and stops accepting.  Async-signal-safe.
    void close() noexcept;

    /// The raw listening descriptor (owned) — for readiness loops.
    [[nodiscard]] int native_handle() const noexcept { return fd_; }

    /// Switches the listener between blocking accepts (default) and the
    /// nonblocking accepts a readiness loop needs.
    void set_nonblocking(bool nonblocking);

private:
    int fd_ = -1;
    int port_ = 0;
    std::atomic<bool> closed_{false};
};

} // namespace ccq

#endif // CCQ_NET_SOCKET_HPP
