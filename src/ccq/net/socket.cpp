#include "ccq/net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>

#include "ccq/common/check.hpp"

namespace ccq {
namespace {

[[nodiscard]] std::string errno_text(const std::string& what)
{
    return what + ": " + std::strerror(errno);
}

[[nodiscard]] sockaddr_in make_address(const std::string& host, int port)
{
    CCQ_EXPECT(port >= 0 && port <= 65535, "make_address: port out of range");
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
    if (::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1)
        throw net_error("unsupported address '" + host + "' (numeric IPv4 or localhost)");
    return addr;
}

} // namespace

bool Stream::read_exact(void* buffer, std::size_t count)
{
    char* cursor = static_cast<char*>(buffer);
    std::size_t done = 0;
    while (done < count) {
        const std::size_t got = read_some(cursor + done, count - done);
        if (got == 0) {
            if (done == 0) return false; // clean EOF at a message boundary
            throw net_error("connection closed mid-message");
        }
        done += got;
    }
    return true;
}

// --- FdStream ---------------------------------------------------------------

FdStream::FdStream(int read_fd, int write_fd, bool owns)
    : read_fd_(read_fd), write_fd_(write_fd), owns_(owns)
{
    CCQ_EXPECT(read_fd >= 0 && write_fd >= 0, "FdStream: invalid descriptor");
}

FdStream::~FdStream()
{
    if (owns_) {
        ::close(read_fd_);
        if (write_fd_ != read_fd_) ::close(write_fd_);
    }
}

std::size_t FdStream::read_some(void* buffer, std::size_t count)
{
    while (true) {
        const ssize_t got = ::read(read_fd_, buffer, count);
        if (got >= 0) return static_cast<std::size_t>(got);
        if (errno == EINTR) continue;
        throw net_error(errno_text("read"));
    }
}

void FdStream::write_all(const void* buffer, std::size_t count)
{
    const char* cursor = static_cast<const char*>(buffer);
    while (count > 0) {
        const ssize_t wrote = ::write(write_fd_, cursor, count);
        if (wrote < 0) {
            if (errno == EINTR) continue;
            throw net_error(errno_text("write"));
        }
        cursor += wrote;
        count -= static_cast<std::size_t>(wrote);
    }
}

void FdStream::interrupt() noexcept
{
    // Only sockets support shutdown; for pipes this is a harmless no-op
    // (ENOTSOCK), and the owner unblocks the peer by closing its end.
    ::shutdown(read_fd_, SHUT_RDWR);
    if (write_fd_ != read_fd_) ::shutdown(write_fd_, SHUT_RDWR);
}

// --- TcpStream --------------------------------------------------------------

TcpStream::TcpStream(int fd) : fd_(fd)
{
    CCQ_EXPECT(fd >= 0, "TcpStream: invalid descriptor");
    // Request/response framing sends small frames; never batch them.
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

TcpStream::~TcpStream()
{
    if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<TcpStream> TcpStream::connect(const std::string& host, int port)
{
    const sockaddr_in addr = make_address(host, port);
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw net_error(errno_text("socket"));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        const std::string text = errno_text("connect to " + host + ":" +
                                            std::to_string(port));
        ::close(fd);
        throw net_error(text);
    }
    return std::make_unique<TcpStream>(fd);
}

std::size_t TcpStream::read_some(void* buffer, std::size_t count)
{
    while (true) {
        const ssize_t got = ::recv(fd_, buffer, count, 0);
        if (got >= 0) return static_cast<std::size_t>(got);
        if (errno == EINTR) continue;
        throw net_error(errno_text("recv"));
    }
}

void TcpStream::write_all(const void* buffer, std::size_t count)
{
    const char* cursor = static_cast<const char*>(buffer);
    while (count > 0) {
        // MSG_NOSIGNAL: a peer that vanished mid-reply must surface as
        // net_error (EPIPE), not kill the server process with SIGPIPE.
        const ssize_t wrote = ::send(fd_, cursor, count, MSG_NOSIGNAL);
        if (wrote < 0) {
            if (errno == EINTR) continue;
            throw net_error(errno_text("send"));
        }
        cursor += wrote;
        count -= static_cast<std::size_t>(wrote);
    }
}

void TcpStream::interrupt() noexcept { ::shutdown(fd_, SHUT_RDWR); }

void TcpStream::set_nonblocking(bool nonblocking) { set_fd_nonblocking(fd_, nonblocking); }

void set_fd_nonblocking(int fd, bool nonblocking)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0) throw net_error(errno_text("fcntl(F_GETFL)"));
    const int wanted = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
    if (wanted != flags && ::fcntl(fd, F_SETFL, wanted) != 0)
        throw net_error(errno_text("fcntl(F_SETFL)"));
}

bool raise_fd_limit(std::size_t need) noexcept
{
    rlimit limit = {};
    if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) return false;
    if (limit.rlim_cur == RLIM_INFINITY || limit.rlim_cur >= need) return true;
    rlimit raised = limit;
    raised.rlim_cur = limit.rlim_max == RLIM_INFINITY
                          ? static_cast<rlim_t>(need)
                          : std::min(static_cast<rlim_t>(need), limit.rlim_max);
    if (raised.rlim_cur <= limit.rlim_cur) return false;
    if (::setrlimit(RLIMIT_NOFILE, &raised) != 0) return false;
    return raised.rlim_cur >= need;
}

// --- TcpListener ------------------------------------------------------------

TcpListener::TcpListener(const std::string& host, int port)
{
    const sockaddr_in requested = make_address(host, port);
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw net_error(errno_text("socket"));
    const int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&requested), sizeof(requested)) != 0) {
        const std::string text =
            errno_text("bind to " + host + ":" + std::to_string(port));
        ::close(fd_);
        fd_ = -1;
        throw net_error(text);
    }
    if (::listen(fd_, 64) != 0) {
        const std::string text = errno_text("listen");
        ::close(fd_);
        fd_ = -1;
        throw net_error(text);
    }
    sockaddr_in bound = {};
    socklen_t length = sizeof(bound);
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &length) != 0) {
        const std::string text = errno_text("getsockname");
        ::close(fd_);
        fd_ = -1;
        throw net_error(text);
    }
    port_ = static_cast<int>(ntohs(bound.sin_port));
}

TcpListener::~TcpListener()
{
    if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<TcpStream> TcpListener::accept()
{
    int transient_errno = 0;
    std::unique_ptr<TcpStream> stream = accept_transient(transient_errno);
    if (stream == nullptr && transient_errno != 0)
        throw net_error("accept: " + std::string(std::strerror(transient_errno)));
    return stream;
}

std::unique_ptr<TcpStream> TcpListener::accept_transient(int& transient_errno)
{
    transient_errno = 0;
    while (true) {
        const int conn = ::accept(fd_, nullptr, nullptr);
        if (conn >= 0) return std::make_unique<TcpStream>(conn);
        if (closed_.load(std::memory_order_acquire)) return nullptr;
        if (errno == EINTR || errno == ECONNABORTED) continue;
        if (errno == EMFILE || errno == ENFILE) {
            // Descriptor exhaustion is transient (connections close, the
            // limit rises): report it so the server can log and continue
            // instead of tearing the listener down.
            transient_errno = errno;
            return nullptr;
        }
        // After close() the kernel fails accept (EINVAL on Linux); any
        // other error on a closed listener is also a clean stop — checked
        // above.  The rest is a real listener failure.
        throw net_error(errno_text("accept"));
    }
}

void TcpListener::set_nonblocking(bool nonblocking) { set_fd_nonblocking(fd_, nonblocking); }

void TcpListener::close() noexcept
{
    closed_.store(true, std::memory_order_release);
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR); // async-signal-safe unblock
}

} // namespace ccq
