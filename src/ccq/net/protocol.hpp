// Wire protocol of the serving subsystem: length-prefixed frames
// carrying binary request/response bodies, with a JSON debug mode.
//
// Every message is one frame:
//
//   length  u32 little-endian   body byte count (<= kMaxFrameBytes)
//   body    length bytes
//
// A request body is an opcode byte followed by its operands; a response
// body is a status byte followed by either the op-specific payload
// (status ok) or an error message string.  A request body whose first
// byte is '{' is the JSON debug mode: the body is a flat JSON object
// ({"op":"distance","from":0,"to":5}) and the response body is JSON
// text.  docs/PROTOCOL.md is the authoritative spec.
//
// This header is transport-free: encoding/decoding works on byte
// strings, framing works on any net/socket.hpp Stream.  Malformed bytes
// throw protocol_error; a server-reported error status surfaces in the
// client as rpc_error.
#ifndef CCQ_NET_PROTOCOL_HPP
#define CCQ_NET_PROTOCOL_HPP

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "ccq/net/socket.hpp"
#include "ccq/obs/flight.hpp"
#include "ccq/serve/query_engine.hpp"

namespace ccq {

/// Thrown on malformed or oversized protocol bytes.
class protocol_error : public std::runtime_error {
public:
    explicit protocol_error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

inline constexpr std::uint32_t kProtocolVersion = 1;

/// Frames larger than this are rejected unread: a garbage length prefix
/// must not turn into a giant allocation.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

enum class Opcode : std::uint8_t {
    ping = 0x01,            ///< liveness + protocol version
    distance = 0x02,        ///< point distance estimate
    path = 0x03,            ///< full path reconstruction
    k_nearest = 0x04,       ///< k nearest reachable targets
    batch_distances = 0x05, ///< vector of point distances
    batch_paths = 0x06,     ///< vector of path reconstructions
    stats = 0x10,           ///< server + cache counters
    metrics = 0x11,         ///< Prometheus text-exposition scrape
    flight = 0x12,          ///< flight-recorder dump (debug)
    shutdown = 0x1f,        ///< graceful server shutdown (control frame)
    json = 0x7b,            ///< '{': body is a JSON debug request
};

/// Number of distinct metric slots for per-opcode accounting: every
/// real opcode plus one trailing "invalid" slot for undecodable
/// frames.
inline constexpr std::size_t kOpMetricCount = 11;
inline constexpr std::size_t kInvalidOpMetric = kOpMetricCount - 1;

/// Dense 0-based index of an opcode for per-op metric arrays.
[[nodiscard]] std::size_t op_metric_index(Opcode op) noexcept;

/// Stable lowercase label for per-op metrics; index kInvalidOpMetric
/// renders as "invalid".
[[nodiscard]] const char* op_metric_name(std::size_t index) noexcept;

enum class Status : std::uint8_t {
    ok = 0,
    malformed = 1,     ///< undecodable or unknown request
    out_of_range = 2,  ///< node id / k outside the snapshot
    unsupported = 3,   ///< e.g. path query against a snapshot without routing
    shutting_down = 4, ///< request raced a graceful shutdown
    internal = 5,      ///< unexpected server-side failure
    forbidden = 6,     ///< control frame without the required auth token
    busy = 7,          ///< connection shed by the --max-connections guard
};

[[nodiscard]] const char* status_name(Status status);

/// Thrown by the Client when the server answers with a non-ok status.
class rpc_error : public std::runtime_error {
public:
    rpc_error(Status status, const std::string& message)
        : std::runtime_error(std::string(status_name(status)) + ": " + message),
          status_(status)
    {
    }
    [[nodiscard]] Status status() const noexcept { return status_; }

private:
    Status status_;
};

/// A decoded request (the union of every op's operands).
struct Request {
    Opcode op = Opcode::ping;
    NodeId from = 0;
    NodeId to = 0;
    int k = 0;
    std::vector<PointQuery> pairs; ///< batch ops
    std::string token;             ///< shutdown auth token (may be empty)
    bool json = false;             ///< arrived via the JSON debug mode
};

/// Counters reported by the stats op.
struct ServerStats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_rejected = 0; ///< shed by --max-connections (busy)
    std::uint64_t active_connections = 0;
    std::uint64_t frames_served = 0;   ///< ok responses
    std::uint64_t errors = 0;          ///< non-ok responses
    std::uint64_t distance_queries = 0;
    std::uint64_t path_queries = 0;
    std::uint64_t knearest_queries = 0;
    std::uint64_t batch_items = 0;     ///< individual queries inside batches
    std::uint64_t cache_hits = 0;      ///< QueryEngine path cache
    std::uint64_t cache_misses = 0;
    double uptime_seconds = 0.0;
    std::int32_t node_count = 0;
    bool has_routing = false;
    // --- stats v2 fields (PR 6).  Encoded after has_routing; a v1
    // server's reply simply ends early and decoders leave the defaults.
    std::uint64_t backpressure_pauses = 0; ///< epoll backend EPOLLIN pauses
    double build_total_rounds = 0.0;       ///< snapshot RoundLedger summary
    std::uint64_t build_total_words = 0;   ///< ditto, machine words sent
    // --- stats v3 fields (sparse serving).  Same nesting rule: a
    // pre-v3 server's reply ends at build_total_words and decoders
    // leave these defaults (a dense source materializes zero rows).
    std::uint8_t source_kind = 0;        ///< ccq::SourceKind on the wire
    std::uint64_t stored_cells = 0;      ///< n^2 dense; edge count sparse
    std::uint64_t rows_materialized = 0; ///< rows computed on demand (sparse)

    friend bool operator==(const ServerStats&, const ServerStats&) = default;
};

// --- framing ----------------------------------------------------------------

void write_frame(Stream& stream, std::string_view body);

/// Reads one frame body; std::nullopt on clean EOF at a frame boundary.
[[nodiscard]] std::optional<std::string> read_frame(Stream& stream);

/// One frame (length prefix + body) as a byte string, for writers that
/// batch several frames into one send (the event loop, pipelined clients).
[[nodiscard]] std::string encode_frame(std::string_view body);

/// Incremental frame reassembly for nonblocking transports: feed() the
/// bytes each readiness event delivers (a frame may arrive across many
/// events, or many frames in one event) and pop complete bodies with
/// next().  An oversized length prefix throws protocol_error as soon as
/// the prefix itself is readable — the body is never buffered.
class FrameDecoder {
public:
    /// Appends raw stream bytes to the reassembly buffer.
    void feed(std::string_view bytes);

    /// Pops the next complete frame body, or std::nullopt if more bytes
    /// are needed.  Throws protocol_error on an oversized length prefix.
    [[nodiscard]] std::optional<std::string> next();

    /// Bytes buffered but not yet returned by next().
    [[nodiscard]] std::size_t buffered_bytes() const noexcept
    {
        return buffer_.size() - pos_;
    }

    /// True when EOF now would cut a frame in half (partial bytes pending).
    [[nodiscard]] bool mid_frame() const noexcept { return buffered_bytes() > 0; }

private:
    std::string buffer_;
    std::size_t pos_ = 0; ///< consumed prefix of buffer_ (compacted lazily)
};

// --- trace envelope ---------------------------------------------------------
//
// A request body may be prefixed with an optional trace envelope:
//
//   marker    u8   0x1e (never a valid opcode or '{')
//   trace_id  u64  little-endian, caller-chosen correlation id
//   flags     u8   bit 0: sampled (record spans server-side)
//
// followed by the ordinary request body.  Untagged bodies are the
// pre-envelope wire shape, so old clients keep working; an old server
// that receives a tagged frame rejects it as an unknown opcode (a
// malformed-status reply) without tearing the connection down —
// detectable version skew, same as the shutdown-token precedent.

inline constexpr std::uint8_t kTraceEnvelopeMarker = 0x1e;

struct TraceContext {
    std::uint64_t trace_id = 0;
    bool sampled = false;

    friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

/// Prefix `body` with a trace envelope.
[[nodiscard]] std::string wrap_trace_envelope(const TraceContext& context,
                                              std::string_view body);

/// If `body` starts with an envelope, strips it (advancing `body` to
/// the inner request) and returns the context; returns std::nullopt
/// and leaves `body` untouched for untagged bodies.  A marker byte
/// with a truncated envelope throws protocol_error.
[[nodiscard]] std::optional<TraceContext> split_trace_envelope(std::string_view& body);

// --- request bodies ---------------------------------------------------------

[[nodiscard]] std::string encode_request(const Request& request);
[[nodiscard]] Request decode_request(std::string_view body); ///< throws protocol_error

// --- response bodies --------------------------------------------------------

[[nodiscard]] std::string encode_error_reply(Status status, std::string_view message);
[[nodiscard]] std::string encode_ok_reply(); ///< bare ok (shutdown acknowledgement)
[[nodiscard]] std::string encode_ping_reply();
[[nodiscard]] std::string encode_distance_reply(Weight distance);
[[nodiscard]] std::string encode_path_reply(const PathResult& path);
[[nodiscard]] std::string encode_nearest_reply(std::span<const NearTarget> targets);
[[nodiscard]] std::string encode_batch_distances_reply(std::span<const Weight> distances);
[[nodiscard]] std::string encode_batch_paths_reply(std::span<const PathResult> paths);
[[nodiscard]] std::string encode_stats_reply(const ServerStats& stats);
[[nodiscard]] std::string encode_metrics_reply(std::string_view text);
[[nodiscard]] std::string encode_flight_reply(std::span<const obs::RequestRecord> records);

/// Splits a response body into (status, rest).  The rest is the ok
/// payload, or the error message for non-ok statuses.
[[nodiscard]] std::pair<Status, std::string_view> split_reply(std::string_view body);

[[nodiscard]] std::uint32_t decode_ping_reply(std::string_view payload);
[[nodiscard]] Weight decode_distance_reply(std::string_view payload);
[[nodiscard]] PathResult decode_path_reply(std::string_view payload);
[[nodiscard]] std::vector<NearTarget> decode_nearest_reply(std::string_view payload);
[[nodiscard]] std::vector<Weight> decode_batch_distances_reply(std::string_view payload);
[[nodiscard]] std::vector<PathResult> decode_batch_paths_reply(std::string_view payload);
[[nodiscard]] ServerStats decode_stats_reply(std::string_view payload);
[[nodiscard]] std::string decode_metrics_reply(std::string_view payload);
[[nodiscard]] std::vector<obs::RequestRecord> decode_flight_reply(std::string_view payload);

// --- JSON debug mode --------------------------------------------------------

/// Parses a flat JSON request object ({"op":"distance","from":0,"to":5};
/// batches use "pairs":[[u,v],...]).  Throws protocol_error.
[[nodiscard]] Request parse_json_request(std::string_view body);

/// Minimal JSON string escaping for untrusted text in rendered replies.
[[nodiscard]] std::string json_escape(std::string_view text);

} // namespace ccq

#endif // CCQ_NET_PROTOCOL_HPP
