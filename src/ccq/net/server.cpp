#include "ccq/net/server.hpp"

#include <unistd.h>
#ifdef __linux__
#include <sys/eventfd.h>
#endif

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <exception>
#include <utility>

#include "ccq/matrix/engine.hpp"
#include "ccq/net/epoll_server.hpp"
#include "ccq/obs/log.hpp"
#include "ccq/obs/trace.hpp"

namespace ccq {
namespace {

/// Raised inside request handling to produce a non-ok response without
/// tearing the connection down.
struct request_rejected {
    Status status;
    std::string message;
};

void append_json_path(std::string& out, const std::vector<NodeId>& nodes)
{
    out += '[';
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (i > 0) out += ',';
        out += std::to_string(nodes[i]);
    }
    out += ']';
}

void append_json_path_result(std::string& out, NodeId from, NodeId to, const PathResult& path)
{
    out += "{\"from\":" + std::to_string(from) + ",\"to\":" + std::to_string(to) +
           ",\"reachable\":" + (path.reachable ? "true" : "false") +
           ",\"distance\":" + std::to_string(path.reachable ? path.distance : -1) +
           ",\"path\":";
    append_json_path(out, path.nodes);
    out += '}';
}

[[nodiscard]] std::string json_error_reply(Status status, const std::string& message)
{
    return "{\"error\":{\"status\":\"" + std::string(status_name(status)) +
           "\",\"message\":\"" + json_escape(message) + "\"}}";
}

} // namespace

IoBackend parse_io_backend(const std::string& name)
{
    if (name == "threads") return IoBackend::threads;
    if (name == "epoll") return IoBackend::epoll;
    throw std::runtime_error("unknown io backend '" + name + "' (threads|epoll)");
}

const char* io_backend_name(IoBackend backend) noexcept
{
    return backend == IoBackend::epoll ? "epoll" : "threads";
}

Server::Server(std::shared_ptr<const QueryEngine> engine, ServerConfig config)
    : engine_(std::move(engine)), config_(std::move(config)), flight_(config_.flight_records)
{
    CCQ_EXPECT(engine_ != nullptr, "Server: null engine");
    init_metrics();
}

void Server::init_metrics()
{
    static const std::string kRequests = "ccq_requests_total";
    static const std::string kLatency = "ccq_request_latency_us";
    static const std::string kSourceLatency = "ccq_query_latency_us";
    const std::string source_label = source_kind_name(engine_->source_kind());
    for (std::size_t i = 0; i < kOpMetricCount; ++i) {
        const std::string op = op_metric_name(i);
        op_metrics_[i].ok = &registry_.counter(
            kRequests, "Requests served, by opcode and outcome.", {{"op", op}, {"status", "ok"}});
        op_metrics_[i].error =
            &registry_.counter(kRequests, "Requests served, by opcode and outcome.",
                               {{"op", op}, {"status", "error"}});
        op_metrics_[i].latency_us = &registry_.histogram(
            kLatency, "Request decode+dispatch+render latency in microseconds.", {{"op", op}});
        op_metrics_[i].source_latency_us = &registry_.histogram(
            kSourceLatency,
            "Request latency in microseconds, by opcode and the engine's source kind.",
            {{"op", op}, {"source", source_label}});
    }
    bytes_read_ = &registry_.counter("ccq_bytes_read_total",
                                     "Bytes read from client connections, framing included.");
    bytes_written_ = &registry_.counter(
        "ccq_bytes_written_total", "Bytes written to client connections, framing included.");
    static const std::string kConns = "ccq_connection_events_total";
    static const std::string kConnsHelp = "Connection lifecycle events, by kind.";
    conns_opened_ = &registry_.counter(kConns, kConnsHelp, {{"event", "opened"}});
    conns_closed_ = &registry_.counter(kConns, kConnsHelp, {{"event", "closed"}});
    conns_shed_ = &registry_.counter(kConns, kConnsHelp, {{"event", "shed"}});
    conns_poisoned_ = &registry_.counter(kConns, kConnsHelp, {{"event", "poisoned"}});
    queue_wait_us_ = &registry_.histogram(
        "ccq_queue_wait_us",
        "Microseconds a decoded request waited for a worker (epoll backend only).");

    // Values that already live in ServerStats atomics / the engine are
    // rendered at scrape time instead of being double-counted.
    registry_.add_collector([this](std::string& out) {
        const ServerStats s = stats();
        obs::append_header(out, "ccq_connections_accepted_total",
                           "Connections accepted since start.", "counter");
        obs::append_sample(out, "ccq_connections_accepted_total", {}, s.connections_accepted);
        obs::append_header(out, "ccq_connections_rejected_total",
                           "Connections shed by the --max-connections guard.", "counter");
        obs::append_sample(out, "ccq_connections_rejected_total", {}, s.connections_rejected);
        obs::append_header(out, "ccq_active_connections", "Currently open connections.",
                           "gauge");
        obs::append_sample(out, "ccq_active_connections", {}, s.active_connections);
        obs::append_header(out, "ccq_frames_served_total", "Frames answered with status ok.",
                           "counter");
        obs::append_sample(out, "ccq_frames_served_total", {}, s.frames_served);
        obs::append_header(out, "ccq_errors_total", "Frames answered with a non-ok status.",
                           "counter");
        obs::append_sample(out, "ccq_errors_total", {}, s.errors);
        obs::append_header(out, "ccq_backpressure_pauses_total",
                           "Times the epoll backend paused reading a connection.", "counter");
        obs::append_sample(out, "ccq_backpressure_pauses_total", {}, s.backpressure_pauses);
        const CacheStats cache = engine_->cache_stats();
        obs::append_header(out, "ccq_cache_events_total",
                           "Path-cache lookups and evictions, by kind.", "counter");
        obs::append_sample(out, "ccq_cache_events_total", {{"event", "hit"}}, cache.hits);
        obs::append_sample(out, "ccq_cache_events_total", {{"event", "miss"}}, cache.misses);
        obs::append_sample(out, "ccq_cache_events_total", {{"event", "eviction"}},
                           cache.evictions);
        obs::append_header(out, "ccq_batch_size",
                           "Items per batch request seen by the query engine.", "histogram");
        obs::append_histogram(out, "ccq_batch_size", {}, engine_->batch_size_distribution());
        obs::append_header(out, "ccq_uptime_seconds", "Seconds since the server started.",
                           "gauge");
        obs::append_sample(out, "ccq_uptime_seconds", {}, s.uptime_seconds);
        obs::append_header(out, "ccq_snapshot_nodes", "Node count of the served snapshot.",
                           "gauge");
        obs::append_sample(out, "ccq_snapshot_nodes", {},
                           static_cast<std::int64_t>(s.node_count));
        obs::append_header(out, "ccq_snapshot_has_routing",
                           "1 when the snapshot carries next-hop routing tables.", "gauge");
        obs::append_sample(out, "ccq_snapshot_has_routing", {},
                           static_cast<std::int64_t>(s.has_routing ? 1 : 0));
        obs::append_header(out, "ccq_snapshot_build_rounds",
                           "Congested-Clique rounds charged by the build (RoundLedger).",
                           "gauge");
        obs::append_sample(out, "ccq_snapshot_build_rounds", {}, s.build_total_rounds);
        obs::append_header(out, "ccq_snapshot_build_words",
                           "Machine words sent by the build (RoundLedger).", "gauge");
        obs::append_sample(out, "ccq_snapshot_build_words", {},
                           static_cast<std::int64_t>(s.build_total_words));
        // The serving DistanceSource: identity, persisted size, and the
        // lazy-materialization work a sparse source has done so far.
        const char* kind = source_kind_name(static_cast<SourceKind>(s.source_kind));
        obs::append_header(out, "ccq_source_info",
                           "1 for the DistanceSource kind answering queries.", "gauge");
        obs::append_sample(out, "ccq_source_info", {{"kind", kind}},
                           static_cast<std::int64_t>(1));
        obs::append_header(out, "ccq_source_stored_cells",
                           "Cells the source persists (n^2 dense, edge count sparse).",
                           "gauge");
        obs::append_sample(out, "ccq_source_stored_cells", {},
                           static_cast<std::int64_t>(s.stored_cells));
        obs::append_header(out, "ccq_source_rows_materialized_total",
                           "Distance rows computed on demand by a sparse source.", "counter");
        obs::append_sample(out, "ccq_source_rows_materialized_total", {},
                           s.rows_materialized);
        obs::append_header(out, "ccq_source_row_cache_hits_total",
                           "Row-cache hits inside a sparse source.", "counter");
        obs::append_sample(out, "ccq_source_row_cache_hits_total", {},
                           engine_->source().row_cache_hits());
        // Width-adaptive min-plus engine: products run in this process
        // (lazy sparse-source rows, admin rebuilds), by element width
        // and k-loop shape.
        const EngineCounters ec = engine_counters();
        obs::append_header(out, "ccq_engine_products_total",
                           "Dense min-plus products run, by kernel element width.", "counter");
        obs::append_sample(out, "ccq_engine_products_total", {{"width", "wide"}},
                           ec.products_wide);
        obs::append_sample(out, "ccq_engine_products_total", {{"width", "narrow"}},
                           ec.products_narrow);
        obs::append_header(out, "ccq_engine_sparse_skip_products_total",
                           "Dense min-plus products that ran the sparse-row skip pass.",
                           "counter");
        obs::append_sample(out, "ccq_engine_sparse_skip_products_total", {},
                           ec.products_sparse_skip);
    });
}

void Server::record_request(std::size_t op_index, bool ok, std::int64_t latency_us) noexcept
{
    OpMetrics& m = op_metrics_[op_index];
    (ok ? m.ok : m.error)->add(1);
    m.latency_us->record(latency_us);
    m.source_latency_us->record(latency_us);
}

void Server::note_conn_opened(std::uint64_t conn_id)
{
    conns_opened_->add(1);
    CCQ_LOG_DEBUG("conn %llu open", static_cast<unsigned long long>(conn_id));
    obs::Tracer::global().instant_event("conn/open", "net");
}

void Server::note_conn_closed(std::uint64_t conn_id)
{
    conns_closed_->add(1);
    CCQ_LOG_DEBUG("conn %llu close", static_cast<unsigned long long>(conn_id));
    obs::Tracer::global().instant_event("conn/close", "net");
}

void Server::note_conn_shed()
{
    conns_shed_->add(1);
    CCQ_LOG_INFO("conn shed: at the --max-connections limit");
}

void Server::note_conn_poisoned(std::uint64_t conn_id, const char* reason)
{
    conns_poisoned_->add(1);
    CCQ_LOG_WARN("conn %llu poisoned: %s", static_cast<unsigned long long>(conn_id), reason);
}

void Server::add_bytes_read(std::uint64_t n) noexcept { bytes_read_->add(n); }

void Server::add_bytes_written(std::uint64_t n) noexcept { bytes_written_->add(n); }

void Server::record_queue_wait(std::int64_t us) noexcept { queue_wait_us_->record(us); }

Server::~Server()
{
    // Backstop for callers that never ran or whose run() threw before
    // its own drain.  (If run() is still executing on another thread,
    // outliving the Server is the caller's lifetime bug; the embedded
    // pattern — tests, bench — joins the run() thread first.)
    drain();
    // The wakeup eventfd stays open for the Server's whole lifetime so
    // request_stop() can never race a close; this is the only close.
    const int wake = loop_wakeup_fd_.exchange(-1, std::memory_order_acq_rel);
    if (wake >= 0) ::close(wake);
}

int Server::listen()
{
    CCQ_EXPECT(!listener_.has_value(), "Server::listen: already listening");
    listener_.emplace(config_.host, config_.port);
    return listener_->port();
}

int Server::port() const
{
    CCQ_EXPECT(listener_.has_value(), "Server::port: call listen() first");
    return listener_->port();
}

void Server::request_stop() noexcept
{
    stop_.store(true, std::memory_order_release);
    if (listener_.has_value()) listener_->close();
    // Wake the epoll backend's loop too: write(2) is async-signal-safe,
    // exactly like the shutdown(2) inside listener close.
    const int wake = loop_wakeup_fd_.load(std::memory_order_acquire);
    if (wake >= 0) {
        const std::uint64_t one = 1;
        [[maybe_unused]] const ssize_t ignored = ::write(wake, &one, sizeof(one));
    }
}

void Server::run()
{
    CCQ_EXPECT(listener_.has_value(), "Server::run: call listen() first");
    if (config_.io == IoBackend::epoll)
        run_epoll();
    else
        run_threads();
}

void Server::run_epoll()
{
#ifdef __linux__
    // Create (once) and publish the wakeup eventfd before the loop
    // exists.  The Server owns it and ~Server closes it: request_stop()
    // may write it from any thread or signal handler at any point in
    // the Server's lifetime, so it must never be closed while a
    // concurrent writer could still hold the value.
    if (loop_wakeup_fd_.load(std::memory_order_relaxed) < 0) {
        const int wake = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
        if (wake < 0) throw net_error("eventfd: " + std::string(std::strerror(errno)));
        loop_wakeup_fd_.store(wake, std::memory_order_release);
    }
    EpollLoop loop(*this);
    loop.run();
#else
    throw net_error("the epoll backend requires Linux (use IoBackend::threads)");
#endif
}

void Server::shed_connection(TcpStream& stream)
{
    connections_rejected_.fetch_add(1, std::memory_order_relaxed);
    note_conn_shed();
    try {
        write_frame(stream, encode_error_reply(
                                Status::busy, "server is at its connection limit, retry later"));
    } catch (const std::exception&) {
        // Best effort: the peer may already be gone; shedding must not
        // take the accept loop down.
    }
}

void Server::run_threads()
{
    try {
        while (!stopping()) {
            int transient_errno = 0;
            std::unique_ptr<TcpStream> stream = listener_->accept_transient(transient_errno);
            if (stream == nullptr) {
                if (transient_errno == 0) break; // listener closed
                // EMFILE/ENFILE: descriptors free up as connections
                // close; log, breathe, keep the listener alive.
                CCQ_LOG_WARN("accept failed (%s); still listening",
                             std::strerror(transient_errno));
                std::this_thread::sleep_for(std::chrono::milliseconds(50));
                continue;
            }
            if (config_.max_connections > 0 &&
                active_connections_.load(std::memory_order_acquire) >=
                    static_cast<std::uint64_t>(config_.max_connections)) {
                shed_connection(*stream);
                continue; // stream destruction closes the shed socket
            }
            const std::uint64_t conn_id =
                connections_accepted_.fetch_add(1, std::memory_order_relaxed) + 1;
            reap_finished_handlers();
            std::lock_guard<std::mutex> lock(handlers_mutex_);
            TcpStream* raw = stream.get();
            auto done = std::make_shared<std::atomic<bool>>(false);
            handlers_.push_back(
                {std::thread([this, owned = std::move(stream), done, conn_id]() mutable {
                     handle_connection(std::move(owned), conn_id);
                     done->store(true, std::memory_order_release);
                 }),
                 done});
            active_streams_.push_back(raw);
        }
    } catch (...) {
        drain(); // an accept failure must not leave handlers unjoined
        throw;
    }
    drain();
}

void Server::reap_finished_handlers()
{
    std::vector<std::thread> finished;
    {
        std::lock_guard<std::mutex> lock(handlers_mutex_);
        std::erase_if(handlers_, [&](Handler& handler) {
            if (!handler.done->load(std::memory_order_acquire)) return false;
            finished.push_back(std::move(handler.thread));
            return true;
        });
    }
    // Joins are instant (the threads have finished) but still happen
    // outside the lock, matching drain()'s ordering.
    for (std::thread& thread : finished)
        if (thread.joinable()) thread.join();
}

void Server::drain()
{
    request_stop();
    {
        std::lock_guard<std::mutex> lock(handlers_mutex_);
        for (Stream* stream : active_streams_) stream->interrupt();
    }
    std::vector<Handler> handlers;
    {
        std::lock_guard<std::mutex> lock(handlers_mutex_);
        handlers.swap(handlers_);
    }
    for (Handler& handler : handlers)
        if (handler.thread.joinable()) handler.thread.join();
}

void Server::handle_connection(std::unique_ptr<TcpStream> stream, std::uint64_t conn_id)
{
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    note_conn_opened(conn_id);
    try {
        while (serve_one(*stream, conn_id)) {
        }
    } catch (const std::exception& error) {
        // Transport failure or framing desync: nothing sensible can be
        // sent on this connection anymore; drop it.
        note_conn_poisoned(conn_id, error.what());
    }
    note_conn_closed(conn_id);
    active_connections_.fetch_sub(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(handlers_mutex_);
    const auto it = std::find(active_streams_.begin(), active_streams_.end(), stream.get());
    if (it != active_streams_.end()) active_streams_.erase(it);
}

void Server::serve_stream(Stream& stream)
{
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t conn_id =
        connections_accepted_.fetch_add(1, std::memory_order_relaxed) + 1;
    note_conn_opened(conn_id);
    {
        // Register so request_stop()/drain() can interrupt a blocked
        // read on this connection too, exactly like accepted ones.
        std::lock_guard<std::mutex> lock(handlers_mutex_);
        active_streams_.push_back(&stream);
    }
    const auto deregister = [&] {
        note_conn_closed(conn_id);
        active_connections_.fetch_sub(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(handlers_mutex_);
        const auto it = std::find(active_streams_.begin(), active_streams_.end(), &stream);
        if (it != active_streams_.end()) active_streams_.erase(it);
    };
    try {
        while (!stopping() && serve_one(stream, conn_id)) {
        }
    } catch (...) {
        deregister();
        throw;
    }
    deregister();
}

std::string Server::process_frame(const std::string& body, bool& shutdown_now,
                                  PendingRequest* pending)
{
    shutdown_now = false;
    using clock = std::chrono::steady_clock;
    const clock::time_point t0 = clock::now();

    // The optional trace envelope sits in front of the request proper;
    // untagged bodies cost exactly one byte compare here.
    std::string_view inner(body);
    TraceContext trace;
    bool tagged = false;
    Request request;
    bool decoded = true;
    std::string reply;
    bool json_body = false;
    try {
        if (std::optional<TraceContext> envelope = split_trace_envelope(inner)) {
            trace = *envelope;
            tagged = true;
        }
        json_body = !inner.empty() && inner.front() == '{';
        request = decode_request(inner);
    } catch (const protocol_error& error) {
        // The frame boundary is intact (the caller consumed exactly the
        // declared bytes), so answer the error — in the caller's own
        // mode — and keep the connection.
        decoded = false;
        reply = json_body ? json_error_reply(Status::malformed, error.what())
                          : encode_error_reply(Status::malformed, error.what());
    }
    const clock::time_point t1 = clock::now();

    if (decoded) {
        try {
            if (stopping() && request.op != Opcode::shutdown)
                throw request_rejected{Status::shutting_down, "server is shutting down"};
            reply = request.json ? answer_json(request) : answer(request);
        } catch (const request_rejected& rejected) {
            reply = request.json ? json_error_reply(rejected.status, rejected.message)
                                 : encode_error_reply(rejected.status, rejected.message);
        } catch (const std::exception& error) {
            reply = request.json ? json_error_reply(Status::internal, error.what())
                                 : encode_error_reply(Status::internal, error.what());
        }
    }

    const bool ok = decoded && (request.json ? reply.rfind("{\"error\"", 0) != 0
                                             : split_reply(reply).first == Status::ok);
    (ok ? frames_served_ : errors_).fetch_add(1, std::memory_order_relaxed);
    const clock::time_point t2 = clock::now();
    if (config_.metrics) {
        const std::int64_t us =
            std::chrono::duration_cast<std::chrono::microseconds>(t2 - t0).count();
        record_request(decoded ? op_metric_index(request.op) : kInvalidOpMetric, ok, us);
    }

    if (pending != nullptr) {
        pending->decode_start = t0;
        pending->decode_end = t1;
        pending->execute_end = t2;
        pending->rec.trace_id = tagged ? trace.trace_id : 0;
        pending->rec.sampled = tagged && trace.sampled;
        pending->rec.opcode = decoded ? static_cast<std::uint8_t>(request.op) : 0;
        pending->rec.status =
            request.json || !decoded
                ? static_cast<std::uint8_t>(ok ? Status::ok : Status::malformed)
                : static_cast<std::uint8_t>(split_reply(reply).first);
        pending->rec.request_bytes = static_cast<std::uint32_t>(4 + body.size());
    }

    shutdown_now = decoded && ok && request.op == Opcode::shutdown;
    return reply;
}

namespace {

[[nodiscard]] std::uint32_t stage_us(std::chrono::steady_clock::time_point from,
                                     std::chrono::steady_clock::time_point to) noexcept
{
    if (to <= from) return 0;
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(to - from).count();
    return us > 0xffffffffll ? 0xffffffffu : static_cast<std::uint32_t>(us);
}

void emit_request_span(const char* name, std::chrono::steady_clock::time_point start,
                       std::chrono::steady_clock::time_point end,
                       const obs::RequestRecord& rec)
{
    char args[128];
    std::snprintf(args, sizeof args, "{\"trace_id\":\"0x%llx\",\"conn\":%llu,\"op\":\"%s\"}",
                  static_cast<unsigned long long>(rec.trace_id),
                  static_cast<unsigned long long>(rec.conn_id),
                  op_metric_name(op_metric_index(static_cast<Opcode>(rec.opcode))));
    obs::Tracer::global().complete_event(name, "req", start, end, args);
}

} // namespace

void Server::commit_request(PendingRequest& pending,
                            std::chrono::steady_clock::time_point flush_end)
{
    obs::RequestRecord& rec = pending.rec;
    const bool queued = pending.enqueued != std::chrono::steady_clock::time_point{};
    rec.queue_us = queued ? stage_us(pending.enqueued, pending.decode_start) : 0;
    rec.decode_us = stage_us(pending.decode_start, pending.decode_end);
    rec.execute_us = stage_us(pending.decode_end, pending.execute_end);
    rec.encode_us = stage_us(pending.encode_start, pending.encode_end);
    rec.flush_us = stage_us(pending.encode_end, flush_end);
    rec.seq = flight_.record(rec);

    if (rec.sampled && obs::Tracer::global().enabled()) {
        // The whole chain is emitted here, after the flush, with the
        // timestamps captured along the way — one connected trace per
        // sampled request.
        if (queued) emit_request_span("req/queue", pending.enqueued, pending.decode_start, rec);
        emit_request_span("req/decode", pending.decode_start, pending.decode_end, rec);
        emit_request_span("req/execute", pending.decode_end, pending.execute_end, rec);
        emit_request_span("req/encode", pending.encode_start, pending.encode_end, rec);
        emit_request_span("req/flush", pending.encode_end, flush_end, rec);
    }

    if (config_.slow_query_us > 0 &&
        rec.total_us() >= static_cast<std::uint64_t>(config_.slow_query_us)) {
        CCQ_LOG_WARN("slow query: op=%s status=%s conn=%llu trace=0x%llx total_us=%llu "
                     "decode_us=%u queue_us=%u execute_us=%u encode_us=%u flush_us=%u "
                     "request_bytes=%u reply_bytes=%u",
                     op_metric_name(op_metric_index(static_cast<Opcode>(rec.opcode))),
                     status_name(static_cast<Status>(rec.status)),
                     static_cast<unsigned long long>(rec.conn_id),
                     static_cast<unsigned long long>(rec.trace_id),
                     static_cast<unsigned long long>(rec.total_us()), rec.decode_us,
                     rec.queue_us, rec.execute_us, rec.encode_us, rec.flush_us,
                     rec.request_bytes, rec.reply_bytes);
    }
}

bool Server::serve_one(Stream& stream, std::uint64_t conn_id)
{
    using clock = std::chrono::steady_clock;
    const std::optional<std::string> body = read_frame(stream); // throws on desync
    if (!body.has_value()) return false;                        // clean EOF

    PendingRequest pending;
    pending.rec.conn_id = conn_id;
    // No dispatch queue in this backend: the queue stage is the instant
    // between frame arrival and decode.
    pending.enqueued = clock::now();
    bool shutdown_now = false;
    const std::string reply = process_frame(*body, shutdown_now, &pending);
    pending.encode_start = clock::now();
    const std::string frame = encode_frame(reply);
    pending.encode_end = clock::now();
    stream.write_all(frame.data(), frame.size());
    pending.rec.reply_bytes = static_cast<std::uint32_t>(frame.size());
    if (config_.metrics) {
        add_bytes_read(4 + body->size());
        add_bytes_written(frame.size());
    }
    commit_request(pending, clock::now());
    if (shutdown_now) {
        request_stop();
        return false;
    }
    return true;
}

namespace {

void check_range(NodeId v, int n)
{
    if (v < 0 || v >= n)
        throw request_rejected{Status::out_of_range,
                               "node " + std::to_string(v) + " outside [0, " +
                                   std::to_string(n) + ")"};
}

/// The shutdown auth gate: with a configured token, a control frame
/// missing it (or carrying the wrong one) is rejected as `forbidden` and
/// never reaches the request_stop() path in serve_one (which only fires
/// on an ok shutdown reply).
void check_shutdown_token(const ServerConfig& config, const Request& request)
{
    if (!config.shutdown_token.empty() && request.token != config.shutdown_token)
        throw request_rejected{Status::forbidden,
                               "shutdown requires the server's shutdown token"};
}

} // namespace

std::string Server::answer(const Request& request)
{
    const int n = engine_->node_count();
    switch (request.op) {
    case Opcode::ping: return encode_ping_reply();
    case Opcode::shutdown:
        check_shutdown_token(config_, request);
        return encode_ok_reply();
    case Opcode::distance:
        check_range(request.from, n);
        check_range(request.to, n);
        distance_queries_.fetch_add(1, std::memory_order_relaxed);
        return encode_distance_reply(engine_->distance(request.from, request.to));
    case Opcode::path:
        check_range(request.from, n);
        check_range(request.to, n);
        if (!engine_->has_routing())
            throw request_rejected{Status::unsupported,
                                   "snapshot has no routing tables (rebuild with routing)"};
        path_queries_.fetch_add(1, std::memory_order_relaxed);
        return encode_path_reply(engine_->path(request.from, request.to));
    case Opcode::k_nearest:
        check_range(request.from, n);
        if (request.k < 0)
            throw request_rejected{Status::out_of_range, "k must be >= 0"};
        knearest_queries_.fetch_add(1, std::memory_order_relaxed);
        return encode_nearest_reply(engine_->nearest_targets(request.from, request.k));
    case Opcode::batch_distances: {
        for (const PointQuery& q : request.pairs) {
            check_range(q.from, n);
            check_range(q.to, n);
        }
        batch_items_.fetch_add(request.pairs.size(), std::memory_order_relaxed);
        return encode_batch_distances_reply(engine_->batch_distances(request.pairs));
    }
    case Opcode::batch_paths: {
        for (const PointQuery& q : request.pairs) {
            check_range(q.from, n);
            check_range(q.to, n);
        }
        if (!engine_->has_routing())
            throw request_rejected{Status::unsupported,
                                   "snapshot has no routing tables (rebuild with routing)"};
        batch_items_.fetch_add(request.pairs.size(), std::memory_order_relaxed);
        return encode_batch_paths_reply(engine_->batch_paths(request.pairs));
    }
    case Opcode::stats: return encode_stats_reply(stats());
    case Opcode::metrics: return encode_metrics_reply(metrics_text());
    case Opcode::flight: return encode_flight_reply(flight_.snapshot());
    case Opcode::json: break; // unreachable: decode never yields a bare json op
    }
    throw request_rejected{Status::malformed, "unhandled opcode"};
}

std::string Server::answer_json(const Request& request)
{
    // Compute through the same validation/dispatch as the binary path so
    // both modes agree, then render the result as JSON.
    switch (request.op) {
    case Opcode::ping:
        (void)answer(Request{});
        return "{\"op\":\"ping\",\"protocol\":" + std::to_string(kProtocolVersion) + "}";
    case Opcode::shutdown:
        check_shutdown_token(config_, request);
        return "{\"op\":\"shutdown\",\"ok\":true}";
    case Opcode::distance: {
        const Weight d = decode_distance_reply(split_reply(answer(request)).second);
        const bool reachable = is_finite(d);
        return "{\"op\":\"distance\",\"from\":" + std::to_string(request.from) +
               ",\"to\":" + std::to_string(request.to) +
               ",\"reachable\":" + (reachable ? "true" : "false") +
               ",\"distance\":" + std::to_string(reachable ? d : -1) + "}";
    }
    case Opcode::path: {
        const PathResult path = decode_path_reply(split_reply(answer(request)).second);
        std::string out = "{\"op\":\"path\",\"result\":";
        append_json_path_result(out, request.from, request.to, path);
        out += '}';
        return out;
    }
    case Opcode::k_nearest: {
        const std::vector<NearTarget> nearest =
            decode_nearest_reply(split_reply(answer(request)).second);
        std::string out = "{\"op\":\"k_nearest\",\"from\":" + std::to_string(request.from) +
                          ",\"nearest\":[";
        for (std::size_t i = 0; i < nearest.size(); ++i) {
            if (i > 0) out += ',';
            out += "{\"node\":" + std::to_string(nearest[i].node) +
                   ",\"distance\":" + std::to_string(nearest[i].distance) + "}";
        }
        out += "]}";
        return out;
    }
    case Opcode::batch_distances: {
        const std::vector<Weight> distances =
            decode_batch_distances_reply(split_reply(answer(request)).second);
        std::string out = "{\"op\":\"batch_distances\",\"results\":[";
        for (std::size_t i = 0; i < distances.size(); ++i) {
            if (i > 0) out += ',';
            out += std::to_string(is_finite(distances[i]) ? distances[i] : -1);
        }
        out += "]}";
        return out;
    }
    case Opcode::batch_paths: {
        const std::vector<PathResult> paths =
            decode_batch_paths_reply(split_reply(answer(request)).second);
        std::string out = "{\"op\":\"batch_paths\",\"results\":[";
        for (std::size_t i = 0; i < paths.size(); ++i) {
            if (i > 0) out += ',';
            append_json_path_result(out, request.pairs[i].from, request.pairs[i].to, paths[i]);
        }
        out += "]}";
        return out;
    }
    case Opcode::stats: {
        const ServerStats s = stats();
        std::string out = "{\"op\":\"stats\"";
        out += ",\"connections_accepted\":" + std::to_string(s.connections_accepted);
        out += ",\"connections_rejected\":" + std::to_string(s.connections_rejected);
        out += ",\"active_connections\":" + std::to_string(s.active_connections);
        out += ",\"frames_served\":" + std::to_string(s.frames_served);
        out += ",\"errors\":" + std::to_string(s.errors);
        out += ",\"distance_queries\":" + std::to_string(s.distance_queries);
        out += ",\"path_queries\":" + std::to_string(s.path_queries);
        out += ",\"knearest_queries\":" + std::to_string(s.knearest_queries);
        out += ",\"batch_items\":" + std::to_string(s.batch_items);
        out += ",\"cache_hits\":" + std::to_string(s.cache_hits);
        out += ",\"cache_misses\":" + std::to_string(s.cache_misses);
        out += ",\"backpressure_pauses\":" + std::to_string(s.backpressure_pauses);
        out += ",\"build_total_rounds\":" + std::to_string(s.build_total_rounds);
        out += ",\"build_total_words\":" + std::to_string(s.build_total_words);
        out += ",\"source_kind\":\"" +
               std::string(source_kind_name(static_cast<SourceKind>(s.source_kind))) + "\"";
        out += ",\"stored_cells\":" + std::to_string(s.stored_cells);
        out += ",\"rows_materialized\":" + std::to_string(s.rows_materialized);
        out += ",\"node_count\":" + std::to_string(s.node_count);
        out += ",\"has_routing\":" + std::string(s.has_routing ? "true" : "false");
        out += "}";
        return out;
    }
    case Opcode::metrics:
        return "{\"op\":\"metrics\",\"content_type\":\"text/plain; version=0.0.4\",\"text\":\"" +
               json_escape(metrics_text()) + "\"}";
    case Opcode::flight: {
        const std::vector<obs::RequestRecord> records = flight_.snapshot();
        std::string out = "{\"op\":\"flight\",\"records\":[";
        for (std::size_t i = 0; i < records.size(); ++i) {
            const obs::RequestRecord& r = records[i];
            if (i > 0) out += ',';
            char buf[320];
            std::snprintf(buf, sizeof buf,
                          "{\"seq\":%llu,\"trace_id\":\"0x%llx\",\"conn\":%llu,\"op\":\"%s\","
                          "\"status\":\"%s\",\"sampled\":%s,\"request_bytes\":%u,"
                          "\"reply_bytes\":%u,\"decode_us\":%u,\"queue_us\":%u,"
                          "\"execute_us\":%u,\"encode_us\":%u,\"flush_us\":%u}",
                          static_cast<unsigned long long>(r.seq),
                          static_cast<unsigned long long>(r.trace_id),
                          static_cast<unsigned long long>(r.conn_id),
                          op_metric_name(op_metric_index(static_cast<Opcode>(r.opcode))),
                          status_name(static_cast<Status>(r.status)),
                          r.sampled ? "true" : "false", r.request_bytes, r.reply_bytes,
                          r.decode_us, r.queue_us, r.execute_us, r.encode_us, r.flush_us);
            out += buf;
        }
        out += "]}";
        return out;
    }
    case Opcode::json: break;
    }
    throw request_rejected{Status::malformed, "unhandled opcode"};
}

ServerStats Server::stats() const
{
    ServerStats stats;
    stats.connections_accepted = connections_accepted_.load(std::memory_order_relaxed);
    stats.connections_rejected = connections_rejected_.load(std::memory_order_relaxed);
    stats.active_connections = active_connections_.load(std::memory_order_relaxed);
    stats.frames_served = frames_served_.load(std::memory_order_relaxed);
    stats.errors = errors_.load(std::memory_order_relaxed);
    stats.distance_queries = distance_queries_.load(std::memory_order_relaxed);
    stats.path_queries = path_queries_.load(std::memory_order_relaxed);
    stats.knearest_queries = knearest_queries_.load(std::memory_order_relaxed);
    stats.batch_items = batch_items_.load(std::memory_order_relaxed);
    const CacheStats cache = engine_->cache_stats();
    stats.cache_hits = cache.hits;
    stats.cache_misses = cache.misses;
    stats.uptime_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - started_).count();
    stats.node_count = engine_->node_count();
    stats.has_routing = engine_->has_routing();
    stats.backpressure_pauses = backpressure_pauses_.load(std::memory_order_relaxed);
    stats.build_total_rounds = engine_->meta().total_rounds;
    stats.build_total_words = engine_->meta().total_words;
    const DistanceSource& source = engine_->source();
    stats.source_kind = static_cast<std::uint8_t>(source.kind());
    stats.stored_cells = source.stored_cells();
    stats.rows_materialized = source.rows_materialized();
    return stats;
}

} // namespace ccq
