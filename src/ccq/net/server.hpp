// The serving front-end: a framed-protocol server over the QueryEngine.
//
// One Server multiplexes any number of client connections onto a single
// immutable QueryEngine (whose own batch entry points fan out on the
// shared ccq::ThreadPool).  Each accepted connection gets a handler
// thread running the request/response loop; the engine's concurrency
// guarantees make that safe without any per-query locking in this
// layer.  A connection can also be served inline from any Stream —
// that is the stdin/stdout mode of ccq_served.
//
// Shutdown is graceful and can come from three places: a shutdown
// control frame on any connection, request_stop() (signal-handler safe),
// or destroying the Server.  In every case the listener closes first,
// in-flight requests finish, blocked reads are interrupted, and run()
// joins every handler before returning.
#ifndef CCQ_NET_SERVER_HPP
#define CCQ_NET_SERVER_HPP

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "ccq/net/protocol.hpp"
#include "ccq/net/socket.hpp"
#include "ccq/obs/flight.hpp"
#include "ccq/obs/metrics.hpp"
#include "ccq/serve/query_engine.hpp"

namespace ccq {

class EpollLoop;

/// Per-request identity + stage timestamps, carried from frame arrival
/// to the flushed reply and then committed to the flight recorder (and,
/// for sampled requests, rendered as a span chain in the trace).  The
/// backend fills conn_id/enqueued before process_frame and the encode/
/// flush marks after; process_frame fills everything in between.
struct PendingRequest {
    obs::RequestRecord rec;
    std::chrono::steady_clock::time_point enqueued{};     ///< queued for a worker
    std::chrono::steady_clock::time_point decode_start{}; ///< process_frame entry
    std::chrono::steady_clock::time_point decode_end{};
    std::chrono::steady_clock::time_point execute_end{};
    std::chrono::steady_clock::time_point encode_start{};
    std::chrono::steady_clock::time_point encode_end{};
};

/// How Server::run() multiplexes connections.
enum class IoBackend {
    threads, ///< one blocking handler thread per connection (portable)
    epoll,   ///< one readiness loop + fixed worker pool (Linux only)
};

/// epoll where it exists (the ~100k-connection backend), threads elsewhere.
[[nodiscard]] constexpr IoBackend default_io_backend() noexcept
{
#ifdef __linux__
    return IoBackend::epoll;
#else
    return IoBackend::threads;
#endif
}

/// Parses "threads" / "epoll" (the ccq_served/--io spelling); throws
/// std::runtime_error on anything else.
[[nodiscard]] IoBackend parse_io_backend(const std::string& name);
[[nodiscard]] const char* io_backend_name(IoBackend backend) noexcept;

struct ServerConfig {
    std::string host = "127.0.0.1";
    int port = 0; ///< 0 picks an ephemeral port (see Server::port())
    /// When non-empty, a `shutdown` control frame must carry exactly
    /// this token; a missing or wrong token answers `forbidden` and the
    /// server keeps serving.  Empty keeps the historical open-shutdown
    /// behavior (fine for stdio/loopback embeddings, not for shared
    /// ports — see docs/PROTOCOL.md).
    std::string shutdown_token;
    /// Connection multiplexing backend; both speak the identical
    /// protocol and produce identical bytes for identical requests.
    IoBackend io = default_io_backend();
    /// Load shedding: beyond this many concurrent connections a new
    /// connection is answered with one `busy` error frame and closed.
    /// 0 = unlimited.
    int max_connections = 0;
    /// Worker threads of the epoll backend's fixed pool (0 = one per
    /// hardware thread).  Ignored by the threads backend, which is
    /// per-connection by construction.
    int workers = 0;
    /// Backpressure (epoll backend): a connection with this many decoded
    /// requests awaiting their response stops being read until responses
    /// drain — pipelining depth, not a hard protocol limit.
    int max_pipeline_depth = 128;
    /// Backpressure (epoll backend): once this many response bytes are
    /// queued toward a slow reader, the connection stops being read
    /// until the queue drains below half.
    std::size_t max_output_bytes = 4u << 20;
    /// Per-request metric recording (per-op counters, latency
    /// histograms, byte counters).  The `metrics` scrape op always
    /// answers; disabling only stops the hot-path recording
    /// (ccq_served --no-metrics, and the bench overhead A/B).
    bool metrics = true;
    /// Flight-recorder depth: the last this-many requests stay
    /// queryable via the `flight` op.  Rounded up to a power of two.
    /// The recorder is always on (its cost is a handful of relaxed
    /// stores), so --no-metrics servers still answer `flight`.
    std::size_t flight_records = 256;
    /// When > 0, a request whose stage breakdown sums to at least this
    /// many microseconds emits one structured warn log line.
    std::int64_t slow_query_us = 0;
};

class Server {
public:
    explicit Server(std::shared_ptr<const QueryEngine> engine, ServerConfig config = {});
    ~Server(); ///< request_stop() + join (safe if run() already returned)
    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Binds the listening socket; returns the bound port.
    int listen();

    /// The bound port; valid after listen().
    [[nodiscard]] int port() const;

    /// Accept loop: serves until a shutdown frame or request_stop(),
    /// then drains handlers.  Call listen() first.
    void run();

    /// Serves one connection inline until EOF or shutdown (stdio mode).
    void serve_stream(Stream& stream);

    /// Initiates shutdown from any thread or a signal handler: only
    /// touches atomics and shutdown(2).  run() performs the actual drain.
    void request_stop() noexcept;

    [[nodiscard]] bool stopping() const noexcept
    {
        return stop_.load(std::memory_order_acquire);
    }

    [[nodiscard]] ServerStats stats() const;

    /// Times the epoll backend paused a connection's reads for
    /// backpressure (pipelining depth or output-queue bytes).  Also on
    /// the wire since stats v2.
    [[nodiscard]] std::uint64_t backpressure_pauses() const noexcept
    {
        return backpressure_pauses_.load(std::memory_order_relaxed);
    }

    /// The Prometheus text exposition served by the `metrics` op; also
    /// callable in-process (tests, an embedding's own scrape endpoint).
    [[nodiscard]] std::string metrics_text() const { return registry_.render(); }

    /// The server's metric registry, for embeddings that want to attach
    /// their own counters or collectors to the same scrape.
    [[nodiscard]] obs::Registry& metrics_registry() noexcept { return registry_; }

private:
    friend class EpollLoop;

    /// A connection-handler thread plus its completion marker, so the
    /// accept loop can reap finished handlers without blocking on live
    /// ones.
    struct Handler {
        std::thread thread;
        std::shared_ptr<std::atomic<bool>> done;
    };

    void run_threads();
    void run_epoll();
    void handle_connection(std::unique_ptr<TcpStream> stream, std::uint64_t conn_id);
    /// One request/response exchange; returns false when the connection
    /// should close (EOF or shutdown frame).
    bool serve_one(Stream& stream, std::uint64_t conn_id);
    /// The whole request pipeline for one intact frame body: strip the
    /// optional trace envelope, decode, validate, dispatch, render —
    /// identical for every backend, so the threads and epoll paths
    /// cannot diverge byte-wise.  Sets `shutdown_now` when the frame
    /// was an authorized shutdown whose ok acknowledgement is the
    /// returned reply.  When `pending` is given, its record and
    /// decode/execute timestamps are filled in.
    [[nodiscard]] std::string process_frame(const std::string& body, bool& shutdown_now,
                                            PendingRequest* pending = nullptr);
    /// Final per-request bookkeeping once the reply bytes reached the
    /// socket: derive the stage breakdown, push the record into the
    /// flight recorder, emit the span chain for sampled requests, and
    /// fire the --slow-query-us log line when the total crosses it.
    void commit_request(PendingRequest& pending,
                        std::chrono::steady_clock::time_point flush_end);
    /// Sheds one over-limit connection: best-effort busy frame + close.
    void shed_connection(TcpStream& stream);
    [[nodiscard]] std::string answer(const Request& request);
    [[nodiscard]] std::string answer_json(const Request& request);
    /// Joins handlers that have already finished (cheap; called per
    /// accept so a long-lived server does not accumulate dead threads).
    void reap_finished_handlers();

    // --- observability hooks shared by both backends ------------------
    void init_metrics();
    /// Per-request accounting called from process_frame.
    void record_request(std::size_t op_index, bool ok, std::int64_t latency_us) noexcept;
    void note_conn_opened(std::uint64_t conn_id);
    void note_conn_closed(std::uint64_t conn_id);
    void note_conn_shed();
    /// A connection that desynced the framing (or hit a transport
    /// error) and was dropped.
    void note_conn_poisoned(std::uint64_t conn_id, const char* reason);
    void add_bytes_read(std::uint64_t n) noexcept;
    void add_bytes_written(std::uint64_t n) noexcept;
    /// Dispatch-queue wait of the epoll backend's worker pool.
    void record_queue_wait(std::int64_t us) noexcept;
    /// Full teardown: stop, interrupt blocked reads, join every handler.
    /// Joins happen outside handlers_mutex_ so finishing handlers can
    /// still deregister themselves.
    void drain();

    std::shared_ptr<const QueryEngine> engine_;
    ServerConfig config_;
    std::optional<TcpListener> listener_;
    std::atomic<bool> stop_{false};
    /// The epoll backend's wakeup eventfd; request_stop() writes it
    /// (async-signal-safe) so a signal interrupts epoll_wait the way
    /// listener_->close() interrupts accept().  Created lazily by
    /// run_epoll(), owned by the Server, and closed only in ~Server —
    /// never while the loop winds down — so a concurrent
    /// request_stop() can never write a closed (or reused) fd.
    std::atomic<int> loop_wakeup_fd_{-1};

    std::mutex handlers_mutex_;
    std::vector<Handler> handlers_;
    std::vector<Stream*> active_streams_; ///< guarded by handlers_mutex_

    std::chrono::steady_clock::time_point started_ = std::chrono::steady_clock::now();
    std::atomic<std::uint64_t> connections_accepted_{0};
    std::atomic<std::uint64_t> connections_rejected_{0};
    std::atomic<std::uint64_t> backpressure_pauses_{0};
    std::atomic<std::uint64_t> active_connections_{0};
    std::atomic<std::uint64_t> frames_served_{0};
    std::atomic<std::uint64_t> errors_{0};
    std::atomic<std::uint64_t> distance_queries_{0};
    std::atomic<std::uint64_t> path_queries_{0};
    std::atomic<std::uint64_t> knearest_queries_{0};
    std::atomic<std::uint64_t> batch_items_{0};

    /// Per-opcode registry handles (index = op_metric_index).
    struct OpMetrics {
        obs::Counter* ok = nullptr;
        obs::Counter* error = nullptr;
        obs::Histogram* latency_us = nullptr;
        /// Same latency stream, additionally labeled with the engine's
        /// source kind so dashboards can split dense vs spanner serving.
        obs::Histogram* source_latency_us = nullptr;
    };

    obs::Registry registry_;
    obs::FlightRecorder flight_;
    OpMetrics op_metrics_[kOpMetricCount] = {};
    obs::Counter* bytes_read_ = nullptr;
    obs::Counter* bytes_written_ = nullptr;
    obs::Counter* conns_opened_ = nullptr;
    obs::Counter* conns_closed_ = nullptr;
    obs::Counter* conns_shed_ = nullptr;
    obs::Counter* conns_poisoned_ = nullptr;
    obs::Histogram* queue_wait_us_ = nullptr;
};

} // namespace ccq

#endif // CCQ_NET_SERVER_HPP
