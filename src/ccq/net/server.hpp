// The serving front-end: a framed-protocol server over the QueryEngine.
//
// One Server multiplexes any number of client connections onto a single
// immutable QueryEngine (whose own batch entry points fan out on the
// shared ccq::ThreadPool).  Each accepted connection gets a handler
// thread running the request/response loop; the engine's concurrency
// guarantees make that safe without any per-query locking in this
// layer.  A connection can also be served inline from any Stream —
// that is the stdin/stdout mode of ccq_served.
//
// Shutdown is graceful and can come from three places: a shutdown
// control frame on any connection, request_stop() (signal-handler safe),
// or destroying the Server.  In every case the listener closes first,
// in-flight requests finish, blocked reads are interrupted, and run()
// joins every handler before returning.
#ifndef CCQ_NET_SERVER_HPP
#define CCQ_NET_SERVER_HPP

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "ccq/net/protocol.hpp"
#include "ccq/net/socket.hpp"
#include "ccq/serve/query_engine.hpp"

namespace ccq {

struct ServerConfig {
    std::string host = "127.0.0.1";
    int port = 0; ///< 0 picks an ephemeral port (see Server::port())
    /// When non-empty, a `shutdown` control frame must carry exactly
    /// this token; a missing or wrong token answers `forbidden` and the
    /// server keeps serving.  Empty keeps the historical open-shutdown
    /// behavior (fine for stdio/loopback embeddings, not for shared
    /// ports — see docs/PROTOCOL.md).
    std::string shutdown_token;
};

class Server {
public:
    explicit Server(std::shared_ptr<const QueryEngine> engine, ServerConfig config = {});
    ~Server(); ///< request_stop() + join (safe if run() already returned)
    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Binds the listening socket; returns the bound port.
    int listen();

    /// The bound port; valid after listen().
    [[nodiscard]] int port() const;

    /// Accept loop: serves until a shutdown frame or request_stop(),
    /// then drains handlers.  Call listen() first.
    void run();

    /// Serves one connection inline until EOF or shutdown (stdio mode).
    void serve_stream(Stream& stream);

    /// Initiates shutdown from any thread or a signal handler: only
    /// touches atomics and shutdown(2).  run() performs the actual drain.
    void request_stop() noexcept;

    [[nodiscard]] bool stopping() const noexcept
    {
        return stop_.load(std::memory_order_acquire);
    }

    [[nodiscard]] ServerStats stats() const;

private:
    /// A connection-handler thread plus its completion marker, so the
    /// accept loop can reap finished handlers without blocking on live
    /// ones.
    struct Handler {
        std::thread thread;
        std::shared_ptr<std::atomic<bool>> done;
    };

    void handle_connection(std::unique_ptr<TcpStream> stream);
    /// One request/response exchange; returns false when the connection
    /// should close (EOF or shutdown frame).
    bool serve_one(Stream& stream);
    [[nodiscard]] std::string answer(const Request& request);
    [[nodiscard]] std::string answer_json(const Request& request);
    /// Joins handlers that have already finished (cheap; called per
    /// accept so a long-lived server does not accumulate dead threads).
    void reap_finished_handlers();
    /// Full teardown: stop, interrupt blocked reads, join every handler.
    /// Joins happen outside handlers_mutex_ so finishing handlers can
    /// still deregister themselves.
    void drain();

    std::shared_ptr<const QueryEngine> engine_;
    ServerConfig config_;
    std::optional<TcpListener> listener_;
    std::atomic<bool> stop_{false};

    std::mutex handlers_mutex_;
    std::vector<Handler> handlers_;
    std::vector<Stream*> active_streams_; ///< guarded by handlers_mutex_

    std::chrono::steady_clock::time_point started_ = std::chrono::steady_clock::now();
    std::atomic<std::uint64_t> connections_accepted_{0};
    std::atomic<std::uint64_t> active_connections_{0};
    std::atomic<std::uint64_t> frames_served_{0};
    std::atomic<std::uint64_t> errors_{0};
    std::atomic<std::uint64_t> distance_queries_{0};
    std::atomic<std::uint64_t> path_queries_{0};
    std::atomic<std::uint64_t> knearest_queries_{0};
    std::atomic<std::uint64_t> batch_items_{0};
};

} // namespace ccq

#endif // CCQ_NET_SERVER_HPP
