// The event-loop backend of the serving front-end (Linux only).
//
// One EpollLoop multiplexes every connection of a Server through a
// single epoll readiness loop: sockets are nonblocking, each connection
// reassembles frames incrementally (a frame may arrive across many
// EPOLLIN events), decoded requests are dispatched to a fixed pool of
// worker threads, and replies are queued per connection and flushed on
// writability — in request order, whatever order the workers finish in.
//
// Backpressure is the congested-clique discipline applied to one host:
// a connection may have at most `max_pipeline_depth` requests in flight
// and at most `max_output_bytes` of queued response bytes; beyond
// either bound the loop simply stops reading that socket (the kernel's
// receive window then pushes back on the peer) until the queue drains.
// Slow readers therefore cost one bounded buffer, not unbounded memory.
//
// The loop produces byte-identical responses to the threads backend by
// construction: both call the same Server::process_frame.
#ifndef CCQ_NET_EPOLL_SERVER_HPP
#define CCQ_NET_EPOLL_SERVER_HPP

#ifdef __linux__

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "ccq/net/protocol.hpp"
#include "ccq/net/server.hpp"

namespace ccq {

class EpollLoop {
public:
    /// Binds to a listening Server (friend access to its counters,
    /// config, and process_frame).  run() serves until the server stops.
    explicit EpollLoop(Server& server);
    ~EpollLoop();
    EpollLoop(const EpollLoop&) = delete;
    EpollLoop& operator=(const EpollLoop&) = delete;

    /// The readiness loop: accept, read, dispatch, flush — until
    /// Server::request_stop(), then drain in-flight requests and return.
    void run();

private:
    struct Task {
        std::uint64_t conn_id = 0;
        std::uint64_t seq = 0;
        std::string body;
        /// Dispatch time: the start of the request's queue-wait stage
        /// (flight recorder + queue-wait histogram).
        std::chrono::steady_clock::time_point enqueued{};
    };
    struct Completion {
        std::uint64_t conn_id = 0;
        std::uint64_t seq = 0;
        std::string reply;
        bool shutdown_now = false;
        /// Identity + stage timestamps so far; the loop thread adds the
        /// encode/flush marks and commits it once the bytes are out.
        PendingRequest record;
    };

    /// Per-connection state, owned exclusively by the loop thread.
    struct Conn {
        int fd = -1;
        std::uint64_t id = 0;
        FrameDecoder decoder;
        std::string out;             ///< framed replies awaiting the socket
        std::size_t out_offset = 0;  ///< flushed prefix of `out`
        std::uint64_t next_dispatch_seq = 0; ///< seq given to the next request
        std::uint64_t next_write_seq = 0;    ///< seq whose reply flushes next
        std::map<std::uint64_t, Completion> ready; ///< out-of-order replies
        int inflight = 0;     ///< dispatched requests without a flushed reply
        bool paused = false;  ///< reads stopped for backpressure
        bool peer_eof = false;  ///< peer sent EOF; flush replies, then close
        bool poisoned = false;  ///< framing desync; stop reading, flush, close
        bool broken = false;    ///< transport error; close immediately
        std::uint32_t armed_events = 0; ///< epoll interest currently registered
        /// Flight-recorder watermarks: bytes ever queued into / flushed
        /// out of `out`.  A request's record commits once the flushed
        /// total passes the queued total at its encode time; records on
        /// connections that die with unflushed replies are dropped.
        std::uint64_t bytes_queued_total = 0;
        std::uint64_t bytes_flushed_total = 0;
        std::deque<std::pair<std::uint64_t, PendingRequest>> awaiting_flush;
    };

    void accept_ready();
    void conn_readable(Conn& conn);
    void conn_writable(Conn& conn);
    /// Pops complete frames from the decoder and dispatches them while
    /// the connection has pipeline/output headroom.
    void drain_decoder(Conn& conn);
    void dispatch(Conn& conn, std::string body);
    void apply_completions();
    void flush(Conn& conn);
    /// Reconciles epoll interest + pause state with the connection's
    /// queue sizes; closes it when it has nothing left to live for.
    void update_conn(Conn& conn);
    void close_conn(Conn& conn);
    [[nodiscard]] bool conn_finished(const Conn& conn) const;
    void set_interest(Conn& conn);
    void begin_drain();
    void worker_loop();

    Server& server_;
    int epoll_fd_ = -1;
    int wakeup_fd_ = -1; ///< eventfd: request_stop + worker completions
    int listener_fd_ = -1;
    bool listener_armed_ = false;
    std::chrono::steady_clock::time_point listener_rearm_at_{};
    bool draining_ = false;
    std::chrono::steady_clock::time_point drain_deadline_{};

    std::uint64_t next_conn_id_ = 2; ///< 0 = listener, 1 = wakeup eventfd
    std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;

    std::vector<std::thread> workers_;
    std::mutex queue_mutex_;
    std::condition_variable queue_cv_;
    std::deque<Task> queue_;
    bool workers_stop_ = false; ///< guarded by queue_mutex_
    std::mutex completion_mutex_;
    std::vector<Completion> completions_;
};

} // namespace ccq

#endif // __linux__
#endif // CCQ_NET_EPOLL_SERVER_HPP
