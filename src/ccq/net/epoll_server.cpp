#ifdef __linux__

#include "ccq/net/epoll_server.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "ccq/common/check.hpp"
#include "ccq/common/parallel.hpp"
#include "ccq/net/server.hpp"
#include "ccq/obs/log.hpp"

namespace ccq {
namespace {

// epoll_event.data.u64 identities below the first connection id.
constexpr std::uint64_t kListenerId = 0;
constexpr std::uint64_t kWakeupId = 1;

constexpr auto kListenerBackoff = std::chrono::milliseconds(50);
constexpr auto kDrainTimeout = std::chrono::seconds(5);
constexpr std::size_t kReadChunk = 64 * 1024;
/// Per-readiness-event read budget: level-triggered epoll re-reports a
/// socket with leftover bytes, so bounding one event's reads keeps a
/// firehose connection from starving the rest.
constexpr std::size_t kReadBudget = 4 * kReadChunk;

[[nodiscard]] std::string errno_text(const char* what)
{
    return std::string(what) + ": " + std::strerror(errno);
}

void epoll_apply(int epoll_fd, int op, int fd, std::uint32_t events, std::uint64_t id)
{
    epoll_event event = {};
    event.events = events;
    event.data.u64 = id;
    if (::epoll_ctl(epoll_fd, op, fd, &event) != 0)
        throw net_error(errno_text("epoll_ctl"));
}

[[nodiscard]] int timeout_ms_until(std::chrono::steady_clock::time_point when)
{
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        when - std::chrono::steady_clock::now());
    return left.count() <= 0 ? 0 : static_cast<int>(left.count());
}

} // namespace

EpollLoop::EpollLoop(Server& server) : server_(server)
{
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) throw net_error(errno_text("epoll_create1"));
    // The wakeup eventfd is owned by the Server (created in run_epoll,
    // closed in ~Server), not by the loop: request_stop() may write it
    // from any thread or signal handler at any point in the Server's
    // lifetime, so closing it here would race those writes.
    wakeup_fd_ = server_.loop_wakeup_fd_.load(std::memory_order_acquire);
    CCQ_EXPECT(wakeup_fd_ >= 0, "EpollLoop: server did not create the wakeup eventfd");
}

EpollLoop::~EpollLoop()
{
    // run() joins the workers on every path; this is the constructor-
    // failure / never-ran backstop.
    {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        workers_stop_ = true;
    }
    queue_cv_.notify_all();
    for (std::thread& worker : workers_)
        if (worker.joinable()) worker.join();
    for (auto& [id, conn] : conns_)
        if (conn->fd >= 0) ::close(conn->fd);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EpollLoop::run()
{
    CCQ_EXPECT(server_.listener_.has_value(), "EpollLoop::run: server is not listening");
    listener_fd_ = server_.listener_->native_handle();
    server_.listener_->set_nonblocking(true);
    epoll_apply(epoll_fd_, EPOLL_CTL_ADD, listener_fd_, EPOLLIN, kListenerId);
    listener_armed_ = true;
    epoll_apply(epoll_fd_, EPOLL_CTL_ADD, wakeup_fd_, EPOLLIN, kWakeupId);

    const int worker_count = resolved_thread_count(server_.config_.workers);
    workers_.reserve(static_cast<std::size_t>(worker_count));
    for (int i = 0; i < worker_count; ++i)
        workers_.emplace_back([this] { worker_loop(); });

    // The wakeup fd was published by run_epoll() before this loop was
    // constructed; re-check the stop flag because a request_stop() that
    // ran before the publish could not have written the eventfd.  (A
    // leftover count from an earlier run is just one spurious wakeup.)
    if (server_.stopping()) begin_drain();

    try {
        epoll_event events[128];
        while (!(draining_ && conns_.empty())) {
            int timeout = -1;
            if (draining_)
                timeout = timeout_ms_until(drain_deadline_);
            else if (!listener_armed_)
                timeout = timeout_ms_until(listener_rearm_at_);

            const int ready =
                ::epoll_wait(epoll_fd_, events, static_cast<int>(sizeof(events) / sizeof(events[0])), timeout);
            if (ready < 0) {
                if (errno == EINTR) continue;
                throw net_error(errno_text("epoll_wait"));
            }
            for (int i = 0; i < ready; ++i) {
                const std::uint64_t id = events[i].data.u64;
                const std::uint32_t what = events[i].events;
                if (id == kWakeupId) {
                    std::uint64_t drained = 0;
                    while (::read(wakeup_fd_, &drained, sizeof(drained)) > 0) {
                    }
                    apply_completions();
                } else if (id == kListenerId) {
                    accept_ready();
                } else {
                    // Re-look up per event: an earlier event in this very
                    // batch (a completion, a listener error) may have
                    // closed this connection already.
                    const auto it = conns_.find(id);
                    if (it == conns_.end()) continue;
                    Conn& conn = *it->second;
                    if ((what & (EPOLLERR | EPOLLHUP)) != 0)
                        conn.broken = true;
                    else if ((what & (EPOLLIN | EPOLLRDHUP)) != 0)
                        conn_readable(conn);
                    update_conn(conn);
                }
            }

            if (server_.stopping() && !draining_) begin_drain();
            if (!draining_ && !listener_armed_ &&
                std::chrono::steady_clock::now() >= listener_rearm_at_) {
                epoll_apply(epoll_fd_, EPOLL_CTL_ADD, listener_fd_, EPOLLIN, kListenerId);
                listener_armed_ = true;
            }
            if (draining_ && !conns_.empty() &&
                std::chrono::steady_clock::now() >= drain_deadline_) {
                // Drain timeout: whoever has not taken their reply by now
                // is not going to.
                std::vector<std::uint64_t> ids;
                ids.reserve(conns_.size());
                for (const auto& [conn_id, conn] : conns_) ids.push_back(conn_id);
                for (const std::uint64_t conn_id : ids) {
                    const auto it = conns_.find(conn_id);
                    if (it != conns_.end()) close_conn(*it->second);
                }
            }
        }
    } catch (...) {
        server_.request_stop();
        {
            std::lock_guard<std::mutex> lock(queue_mutex_);
            workers_stop_ = true;
        }
        queue_cv_.notify_all();
        for (std::thread& worker : workers_)
            if (worker.joinable()) worker.join();
        throw;
    }

    {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        workers_stop_ = true;
    }
    queue_cv_.notify_all();
    for (std::thread& worker : workers_)
        if (worker.joinable()) worker.join();
}

void EpollLoop::begin_drain()
{
    draining_ = true;
    drain_deadline_ = std::chrono::steady_clock::now() + kDrainTimeout;
    server_.listener_->close(); // idempotent; also done by request_stop()
    if (listener_armed_) {
        epoll_apply(epoll_fd_, EPOLL_CTL_DEL, listener_fd_, 0, kListenerId);
        listener_armed_ = false;
    }
    // Stop reading everywhere; already-buffered complete frames still get
    // dispatched (and answered `shutting_down` by process_frame), queued
    // replies still flush.  update_conn closes whoever is already idle.
    std::vector<std::uint64_t> ids;
    ids.reserve(conns_.size());
    for (const auto& [conn_id, conn] : conns_) ids.push_back(conn_id);
    for (const std::uint64_t conn_id : ids) {
        const auto it = conns_.find(conn_id);
        if (it != conns_.end()) update_conn(*it->second);
    }
}

void EpollLoop::accept_ready()
{
    while (!draining_) {
        const int fd = ::accept4(listener_fd_, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) return;
            if (errno == EINTR || errno == ECONNABORTED) continue;
            if (errno == EMFILE || errno == ENFILE) {
                // Out of descriptors: connections close and free some up,
                // so log and back off instead of spinning on a listener
                // that stays readable (level-triggered) the whole time.
                CCQ_LOG_WARN("accept failed (%s); still listening", std::strerror(errno));
                epoll_apply(epoll_fd_, EPOLL_CTL_DEL, listener_fd_, 0, kListenerId);
                listener_armed_ = false;
                listener_rearm_at_ = std::chrono::steady_clock::now() + kListenerBackoff;
                return;
            }
            if (server_.stopping()) return; // closed listener fails accept
            throw net_error(errno_text("accept4"));
        }
        TcpStream stream(fd); // owns fd, sets TCP_NODELAY
        if (server_.config_.max_connections > 0 &&
            conns_.size() >= static_cast<std::size_t>(server_.config_.max_connections)) {
            // Fresh socket, empty send buffer: the busy frame fits
            // without blocking even though the fd is nonblocking.
            server_.shed_connection(stream);
            continue; // stream destruction closes the shed socket
        }
        server_.connections_accepted_.fetch_add(1, std::memory_order_relaxed);
        server_.active_connections_.fetch_add(1, std::memory_order_relaxed);
        auto conn = std::make_unique<Conn>();
        conn->fd = stream.release_fd(); // the Conn owns the fd from here on
        conn->id = next_conn_id_++;
        conn->armed_events = EPOLLIN | EPOLLRDHUP;
        epoll_apply(epoll_fd_, EPOLL_CTL_ADD, fd, conn->armed_events, conn->id);
        server_.note_conn_opened(conn->id);
        conns_.emplace(conn->id, std::move(conn));
    }
}

void EpollLoop::conn_readable(Conn& conn)
{
    if (conn.paused || conn.peer_eof || conn.poisoned || conn.broken || draining_) return;
    char buffer[kReadChunk];
    std::size_t taken = 0;
    while (taken < kReadBudget) {
        const ssize_t got = ::recv(conn.fd, buffer, sizeof(buffer), 0);
        if (got > 0) {
            conn.decoder.feed(std::string_view(buffer, static_cast<std::size_t>(got)));
            taken += static_cast<std::size_t>(got);
            continue;
        }
        if (got == 0) {
            conn.peer_eof = true;
            break;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        conn.broken = true;
        break;
    }
    if (taken > 0 && server_.config_.metrics) server_.add_bytes_read(taken);
}

void EpollLoop::drain_decoder(Conn& conn)
{
    while (conn.inflight < server_.config_.max_pipeline_depth &&
           conn.out.size() - conn.out_offset < server_.config_.max_output_bytes) {
        std::optional<std::string> body = conn.decoder.next();
        if (!body.has_value()) return;
        dispatch(conn, std::move(*body));
    }
}

void EpollLoop::dispatch(Conn& conn, std::string body)
{
    Task task;
    task.conn_id = conn.id;
    task.seq = conn.next_dispatch_seq++;
    task.body = std::move(body);
    task.enqueued = std::chrono::steady_clock::now();
    ++conn.inflight;
    {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        queue_.push_back(std::move(task));
    }
    queue_cv_.notify_one();
}

void EpollLoop::worker_loop()
{
    while (true) {
        Task task;
        {
            std::unique_lock<std::mutex> lock(queue_mutex_);
            queue_cv_.wait(lock, [this] { return !queue_.empty() || workers_stop_; });
            if (queue_.empty()) return; // workers_stop_, queue drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        Completion completion;
        completion.conn_id = task.conn_id;
        completion.seq = task.seq;
        completion.record.rec.conn_id = task.conn_id;
        completion.record.enqueued = task.enqueued;
        if (server_.config_.metrics) {
            const auto waited = std::chrono::steady_clock::now() - task.enqueued;
            server_.record_queue_wait(
                std::chrono::duration_cast<std::chrono::microseconds>(waited).count());
        }
        try {
            completion.reply =
                server_.process_frame(task.body, completion.shutdown_now, &completion.record);
        } catch (const std::exception& error) {
            // process_frame answers its own failures; this is the
            // out-of-memory / logic-bug backstop.
            completion.reply = encode_error_reply(Status::internal, error.what());
            completion.record.rec.status = static_cast<std::uint8_t>(Status::internal);
        }
        {
            std::lock_guard<std::mutex> lock(completion_mutex_);
            completions_.push_back(std::move(completion));
        }
        const std::uint64_t one = 1;
        [[maybe_unused]] const ssize_t ignored = ::write(wakeup_fd_, &one, sizeof(one));
    }
}

void EpollLoop::apply_completions()
{
    std::vector<Completion> batch;
    {
        std::lock_guard<std::mutex> lock(completion_mutex_);
        batch.swap(completions_);
    }
    bool shutdown_now = false;
    for (Completion& completion : batch) {
        shutdown_now = shutdown_now || completion.shutdown_now;
        const auto it = conns_.find(completion.conn_id);
        if (it == conns_.end()) continue; // connection died while queued
        Conn& conn = *it->second;
        conn.ready.emplace(completion.seq, std::move(completion));
        // Flush the in-order prefix: the protocol answers requests in
        // arrival order no matter which worker finished first.
        for (auto ready_it = conn.ready.begin();
             ready_it != conn.ready.end() && ready_it->first == conn.next_write_seq;
             ready_it = conn.ready.erase(ready_it)) {
            Completion& done = ready_it->second;
            done.record.encode_start = std::chrono::steady_clock::now();
            conn.out += encode_frame(done.reply);
            done.record.encode_end = std::chrono::steady_clock::now();
            done.record.rec.reply_bytes = static_cast<std::uint32_t>(4 + done.reply.size());
            conn.bytes_queued_total += 4 + done.reply.size();
            conn.awaiting_flush.emplace_back(conn.bytes_queued_total,
                                             std::move(done.record));
            ++conn.next_write_seq;
            --conn.inflight;
        }
        update_conn(conn);
    }
    if (shutdown_now) server_.request_stop();
}

void EpollLoop::flush(Conn& conn)
{
    std::size_t sent = 0;
    while (conn.out_offset < conn.out.size()) {
        const ssize_t wrote = ::send(conn.fd, conn.out.data() + conn.out_offset,
                                     conn.out.size() - conn.out_offset, MSG_NOSIGNAL);
        if (wrote > 0) {
            conn.out_offset += static_cast<std::size_t>(wrote);
            sent += static_cast<std::size_t>(wrote);
            continue;
        }
        if (wrote < 0 && errno == EINTR) continue;
        if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        conn.broken = true; // EPIPE, ECONNRESET, ...
        break;
    }
    if (sent > 0 && server_.config_.metrics) server_.add_bytes_written(sent);
    if (sent > 0) {
        // Commit every request whose reply bytes are now fully on the
        // socket: its flush stage ends here.
        conn.bytes_flushed_total += sent;
        const auto flushed_at = std::chrono::steady_clock::now();
        while (!conn.awaiting_flush.empty() &&
               conn.awaiting_flush.front().first <= conn.bytes_flushed_total) {
            server_.commit_request(conn.awaiting_flush.front().second, flushed_at);
            conn.awaiting_flush.pop_front();
        }
    }
    if (conn.broken) return;
    if (conn.out_offset == conn.out.size()) {
        conn.out.clear();
        conn.out_offset = 0;
    } else if (conn.out_offset >= kReadChunk) {
        conn.out.erase(0, conn.out_offset);
        conn.out_offset = 0;
    }
}

bool EpollLoop::conn_finished(const Conn& conn) const
{
    // Once reads have ended (EOF, desync, or server drain), the
    // connection lives only to deliver what it is still owed.  With no
    // request in flight and the output flushed, the decoder cannot be
    // holding a complete frame either (update_conn drains it whenever
    // there is headroom, and an empty pipeline is all headroom) — at
    // most a partial frame, which EOF legitimately truncates.
    const bool reads_over = conn.peer_eof || conn.poisoned || draining_;
    return reads_over && conn.inflight == 0 && conn.ready.empty() &&
           conn.out_offset == conn.out.size();
}

void EpollLoop::update_conn(Conn& conn)
{
    if (!conn.broken) {
        if (!conn.poisoned) {
            try {
                drain_decoder(conn);
            } catch (const protocol_error& error) {
                // Framing desync (oversized length prefix): like the
                // blocking backend, answer everything before the bad
                // frame, then drop the connection.
                conn.poisoned = true;
                server_.note_conn_poisoned(conn.id, error.what());
            }
        }
        if (conn.out_offset < conn.out.size()) flush(conn);
    }
    if (conn.broken) {
        close_conn(conn);
        return;
    }

    const std::size_t pending_out = conn.out.size() - conn.out_offset;
    const bool over = conn.inflight >= server_.config_.max_pipeline_depth ||
                      pending_out >= server_.config_.max_output_bytes;
    const bool under =
        conn.inflight <= server_.config_.max_pipeline_depth / 2 &&
        pending_out <= server_.config_.max_output_bytes / 2;
    if (!conn.paused && over && !conn.peer_eof && !conn.poisoned && !draining_) {
        conn.paused = true;
        server_.backpressure_pauses_.fetch_add(1, std::memory_order_relaxed);
    } else if (conn.paused && under) {
        conn.paused = false;
    }

    if (conn_finished(conn)) {
        close_conn(conn);
        return;
    }
    set_interest(conn);
}

void EpollLoop::set_interest(Conn& conn)
{
    std::uint32_t wanted = EPOLLRDHUP;
    if (!conn.paused && !conn.peer_eof && !conn.poisoned && !draining_)
        wanted |= EPOLLIN;
    if (conn.out_offset < conn.out.size()) wanted |= EPOLLOUT;
    if (wanted == conn.armed_events) return;
    epoll_apply(epoll_fd_, EPOLL_CTL_MOD, conn.fd, wanted, conn.id);
    conn.armed_events = wanted;
}

void EpollLoop::close_conn(Conn& conn)
{
    const std::uint64_t id = conn.id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
    ::close(conn.fd);
    conn.fd = -1;
    server_.note_conn_closed(id);
    server_.active_connections_.fetch_sub(1, std::memory_order_relaxed);
    conns_.erase(id); // destroys `conn`
}

} // namespace ccq

#endif // __linux__
