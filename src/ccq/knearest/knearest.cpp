#include "ccq/knearest/knearest.hpp"

#include <algorithm>

#include "ccq/common/math.hpp"
#include "ccq/knearest/bins.hpp"
#include "ccq/matrix/engine.hpp"

namespace ccq {

BinSchemeParams bin_scheme_params(int n, int k, int h)
{
    CCQ_EXPECT(n >= 1 && k >= 1 && h >= 1, "bin_scheme_params: positive n, k, h required");
    BinSchemeParams params;
    // p = floor(n^{1/h} * h / 4), computed exactly on integers.
    params.p = floor_nth_root(n, h) * h / 4;
    if (params.p < h || params.p < 1) {
        params.degenerate = true;
        return params;
    }
    const std::int64_t list_length = static_cast<std::int64_t>(n) * k;
    params.bin_size = ceil_div(list_length, params.p);
    if (params.bin_size <= k) {
        // Bin no larger than one local list: paper argues k ∈ O(1) here;
        // take the broadcast branch.
        params.degenerate = true;
        return params;
    }
    params.p_effective = ceil_div(list_length, params.bin_size);
    if (params.p_effective < h) {
        params.degenerate = true;
        return params;
    }
    // h * C(p_eff, h) combinations; the paper proves <= n for the exact
    // parameterization — verify, and degrade gracefully otherwise.
    params.combination_count =
        h * saturating_binomial(params.p_effective, h, static_cast<std::int64_t>(n) + 1);
    if (params.combination_count > n) params.degenerate = true;
    return params;
}

namespace {

/// Analytic round charge for one non-degenerate iteration, mirroring the
/// loads of Lemma 5.3: index setup (<= 2n words each way), bin delivery
/// (each helper receives h bins of bin_size 3-word records), responses
/// (each node receives <= 2(n/p)k 2-word records).
void charge_iteration_analytically(CliqueTransport& transport, const BinSchemeParams& params,
                                   int n, int k, int h)
{
    RoutingLoad setup;
    setup.max_sent = setup.max_received = 2 * static_cast<std::uint64_t>(n);
    setup.total_words = 2ULL * static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n);
    transport.charge_route("bin-index-setup", setup);

    RoutingLoad delivery;
    delivery.max_received =
        3ULL * static_cast<std::uint64_t>(h) * static_cast<std::uint64_t>(params.bin_size);
    delivery.total_words = delivery.max_received *
                           static_cast<std::uint64_t>(params.combination_count);
    transport.charge_redundant_route("bin-delivery", delivery);

    RoutingLoad responses;
    const std::uint64_t helpers_per_node =
        static_cast<std::uint64_t>(ceil_div(2 * static_cast<std::int64_t>(n), params.p)) + 1;
    responses.max_received = 2ULL * helpers_per_node * static_cast<std::uint64_t>(k);
    responses.total_words = responses.max_received * static_cast<std::uint64_t>(n);
    transport.charge_redundant_route("bin-responses", responses);
}

} // namespace

KNearestResult compute_k_nearest(const SparseMatrix& adjacency, const KNearestOptions& options,
                                 CliqueTransport& transport, std::string_view phase)
{
    const int n = static_cast<int>(adjacency.size());
    CCQ_EXPECT(n >= 1, "compute_k_nearest: empty matrix");
    CCQ_EXPECT(options.k >= 1 && options.h >= 1 && options.iterations >= 0,
               "compute_k_nearest: positive k, h and nonnegative iterations required");
    for (NodeId u = 0; u < n; ++u) {
        const SparseRow& row = adjacency[static_cast<std::size_t>(u)];
        const bool has_self = std::any_of(row.begin(), row.end(), [u](const SparseEntry& e) {
            return e.node == u && e.dist == 0;
        });
        CCQ_EXPECT(has_self, "compute_k_nearest: rows must contain diagonal zeros");
    }
    PhaseScope scope(transport.ledger(), phase);

    const int k = std::min(options.k, n);
    const BinSchemeParams params = bin_scheme_params(n, k, options.h);

    KNearestResult result;
    result.rows = filter_k_smallest(adjacency, k);
    result.used_degenerate_broadcast = params.degenerate;
    for (int iteration = 0; iteration < options.iterations; ++iteration) {
        if (options.faithful_bins) {
            result.rows = knearest_iteration_bins(result.rows, k, options.h, transport,
                                                  "iteration", options.engine);
        } else {
            if (params.degenerate) {
                // Broadcast branch: every node publishes its k-list.
                transport.charge_broadcast_all("broadcast-k-lists",
                                               2 * static_cast<std::uint64_t>(k));
            } else {
                charge_iteration_analytically(transport, params, n, k, options.h);
            }
            result.rows = filtered_hop_power(result.rows, options.h, k, n, options.engine);
        }
    }
    result.hop_budget = saturating_pow(options.h, options.iterations);
    return result;
}

} // namespace ccq
