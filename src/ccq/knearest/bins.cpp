#include "ccq/knearest/bins.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "ccq/common/math.hpp"
#include "ccq/knearest/knearest.hpp"
#include "ccq/matrix/engine.hpp"

namespace ccq {
namespace {

/// One h-combination: an ordered first bin plus h-1 unordered others.
struct Combination {
    int first_bin = 0;
    std::vector<int> other_bins;
};

/// Enumerates all h * C(p, h) combinations deterministically: for each
/// first bin, the (h-1)-subsets of the remaining bins in lexicographic
/// order.  The paper (Lemma 5.3) proves the count is at most n for the
/// canonical parameters; callers verified this via bin_scheme_params.
std::vector<Combination> enumerate_combinations(int p, int h)
{
    std::vector<Combination> combos;
    std::vector<int> subset(static_cast<std::size_t>(h - 1));
    for (int first = 0; first < p; ++first) {
        // Remaining bins, in increasing order.
        std::vector<int> rest;
        rest.reserve(static_cast<std::size_t>(p - 1));
        for (int b = 0; b < p; ++b)
            if (b != first) rest.push_back(b);
        // Lexicographic (h-1)-subsets of `rest` by index positions.
        const int m = static_cast<int>(rest.size());
        const int need = h - 1;
        if (need == 0) {
            combos.push_back(Combination{first, {}});
            continue;
        }
        std::vector<int> idx(static_cast<std::size_t>(need));
        for (int i = 0; i < need; ++i) idx[static_cast<std::size_t>(i)] = i;
        while (true) {
            for (int i = 0; i < need; ++i)
                subset[static_cast<std::size_t>(i)] = rest[static_cast<std::size_t>(idx[static_cast<std::size_t>(i)])];
            combos.push_back(Combination{first, subset});
            // Next combination of indices.
            int i = need - 1;
            while (i >= 0 && idx[static_cast<std::size_t>(i)] == m - need + i) --i;
            if (i < 0) break;
            ++idx[static_cast<std::size_t>(i)];
            for (int j = i + 1; j < need; ++j)
                idx[static_cast<std::size_t>(j)] = idx[static_cast<std::size_t>(j - 1)] + 1;
        }
    }
    return combos;
}

/// Record delivered to a helper node: one triplet of the global list M,
/// tagged with the bin it came from.
struct BinRecord {
    NodeId owner;
    NodeId node;
    Weight dist;
    std::int32_t bin;
};

/// Helper-side h-hop DP for query start `u`: first hop restricted to
/// `first_bin` edges out of u, later hops over all held edges.
SparseRow helper_candidates(const std::unordered_map<NodeId, std::vector<BinRecord>>& edges_by_source,
                            NodeId u, int first_bin, int h, int k)
{
    std::unordered_map<NodeId, Weight> best;
    best[u] = 0;
    std::vector<NodeId> frontier;
    const auto relax = [&](NodeId to, Weight dist, std::vector<NodeId>& next) {
        auto [it, inserted] = best.try_emplace(to, dist);
        if (!inserted) {
            if (dist >= it->second) return;
            it->second = dist;
        }
        next.push_back(to);
    };

    // Hop 1: only first-bin edges out of u.
    if (const auto it = edges_by_source.find(u); it != edges_by_source.end()) {
        for (const BinRecord& e : it->second) {
            if (e.bin != first_bin) continue;
            relax(e.node, e.dist, frontier);
        }
    }
    // Hops 2..h: any held edge.
    for (int hop = 2; hop <= h && !frontier.empty(); ++hop) {
        std::vector<NodeId> next;
        for (const NodeId x : frontier) {
            const auto it = edges_by_source.find(x);
            if (it == edges_by_source.end()) continue;
            const Weight dx = best.at(x);
            for (const BinRecord& e : it->second)
                relax(e.node, saturating_add(dx, e.dist), next);
        }
        frontier = std::move(next);
    }

    SparseRow candidates;
    candidates.reserve(best.size());
    for (const auto& [node, dist] : best) candidates.push_back(SparseEntry{node, dist});
    std::sort(candidates.begin(), candidates.end(), entry_less);
    if (std::cmp_less(k, candidates.size())) candidates.resize(static_cast<std::size_t>(k));
    return candidates;
}

} // namespace

SparseMatrix knearest_iteration_bins(const SparseMatrix& filtered, int k, int h,
                                     CliqueTransport& transport, std::string_view phase,
                                     const EngineConfig& engine)
{
    const int n = static_cast<int>(filtered.size());
    CCQ_EXPECT(n >= 1 && k >= 1 && h >= 1, "knearest_iteration_bins: bad parameters");
    PhaseScope scope(transport.ledger(), phase);

    const BinSchemeParams params = bin_scheme_params(n, k, h);
    if (params.degenerate) {
        // Broadcast branch (paper Section 5.2 assumptions): every node
        // publishes its k-list, computation is local.
        transport.charge_broadcast_all("broadcast-k-lists", 2 * static_cast<std::uint64_t>(k));
        return filtered_hop_power(filtered, h, k, n, engine);
    }

    const std::int64_t bin_size = params.bin_size;
    const int p = static_cast<int>(params.p_effective);
    std::vector<Combination> combos = enumerate_combinations(p, h);
    CCQ_CHECK(std::cmp_less_equal(combos.size(), static_cast<std::size_t>(n)),
              "bin scheme: more combinations than nodes");

    std::vector<std::vector<int>> combos_by_first_bin(static_cast<std::size_t>(p));
    for (std::size_t c = 0; c < combos.size(); ++c)
        combos_by_first_bin[static_cast<std::size_t>(combos[c].first_bin)].push_back(
            static_cast<int>(c));

    // Index setup: nodes agree on which segment of each local list feeds
    // which helper (the l_uv / r_uv exchange of Lemma 5.3).
    RoutingLoad setup;
    setup.max_sent = setup.max_received = 2 * static_cast<std::uint64_t>(n);
    setup.total_words = 2ULL * static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n);
    transport.charge_route("bin-index-setup", setup);

    // Step 3: deliver bin contents to helper nodes (real routing).
    const auto for_each_entry_in_bin = [&](int bin, auto&& consume) {
        const std::int64_t lo = static_cast<std::int64_t>(bin) * bin_size;
        const std::int64_t hi =
            std::min<std::int64_t>(lo + bin_size, static_cast<std::int64_t>(n) * k);
        for (std::int64_t g = lo; g < hi; ++g) {
            const NodeId owner = static_cast<NodeId>(g / k);
            const std::size_t pos = static_cast<std::size_t>(g % k);
            const SparseRow& row = filtered[static_cast<std::size_t>(owner)];
            if (pos >= row.size()) continue; // padding slot: nothing to send
            consume(owner, row[pos], bin);
        }
    };

    MessageExchange<BinRecord> delivery(n);
    for (std::size_t c = 0; c < combos.size(); ++c) {
        const auto helper = static_cast<NodeId>(c);
        const auto send_bin = [&](int bin) {
            for_each_entry_in_bin(bin, [&](NodeId owner, const SparseEntry& entry, int b) {
                delivery.send(owner, helper,
                              BinRecord{owner, entry.node, entry.dist, static_cast<std::int32_t>(b)});
            });
        };
        send_bin(combos[c].first_bin);
        for (const int bin : combos[c].other_bins) send_bin(bin);
    }
    const auto helper_inboxes =
        delivery.deliver(transport, "bin-delivery", /*words_per_record=*/3, /*redundant=*/true);

    // Step 4: each node u queries the helpers whose first bin intersects
    // M(u); helpers respond with u's k candidate nearest.
    std::vector<std::vector<NodeId>> queries(combos.size());
    for (NodeId u = 0; u < n; ++u) {
        const std::int64_t lo = static_cast<std::int64_t>(u) * k;
        const std::int64_t hi = lo + k - 1;
        const int b_lo = static_cast<int>(lo / bin_size);
        const int b_hi = static_cast<int>(hi / bin_size);
        for (int b = b_lo; b <= std::min(b_hi, p - 1); ++b) {
            for (const int c : combos_by_first_bin[static_cast<std::size_t>(b)])
                queries[static_cast<std::size_t>(c)].push_back(u);
        }
    }

    MessageExchange<SparseEntry> responses(n);
    for (std::size_t c = 0; c < combos.size(); ++c) {
        if (queries[c].empty()) continue;
        const auto helper = static_cast<NodeId>(c);
        std::unordered_map<NodeId, std::vector<BinRecord>> edges_by_source;
        for (const auto& routed : helper_inboxes[static_cast<std::size_t>(helper)])
            edges_by_source[routed.payload.owner].push_back(routed.payload);
        std::vector<NodeId> starts = queries[c];
        std::sort(starts.begin(), starts.end());
        starts.erase(std::unique(starts.begin(), starts.end()), starts.end());
        for (const NodeId u : starts) {
            const SparseRow candidates =
                helper_candidates(edges_by_source, u, combos[c].first_bin, h, k);
            for (const SparseEntry& entry : candidates) responses.send(helper, u, entry);
        }
    }
    const auto response_inboxes =
        responses.deliver(transport, "bin-responses", /*words_per_record=*/2, /*redundant=*/true);

    // Merge: minimum per target over all helper responses, plus self.
    SparseMatrix result(static_cast<std::size_t>(n));
    for (NodeId u = 0; u < n; ++u) {
        std::unordered_map<NodeId, Weight> best;
        best[u] = 0;
        for (const auto& routed : response_inboxes[static_cast<std::size_t>(u)]) {
            auto [it, inserted] = best.try_emplace(routed.payload.node, routed.payload.dist);
            if (!inserted) it->second = min_weight(it->second, routed.payload.dist);
        }
        SparseRow row;
        row.reserve(best.size());
        for (const auto& [node, dist] : best) row.push_back(SparseEntry{node, dist});
        std::sort(row.begin(), row.end(), entry_less);
        if (std::cmp_less(k, row.size())) row.resize(static_cast<std::size_t>(k));
        result[static_cast<std::size_t>(u)] = std::move(row);
    }
    return result;
}

} // namespace ccq
