// Faithful implementation of the Section 5.2 distributed algorithm:
// global list M = M(1)◦...◦M(n), contiguous bins C_1..C_p, one
// h-combination of bins per helper node, and the query/response phase.
//
// Used by tests to validate that the routed computation produces exactly
// the filtered power filter_k((A-bar)^h), and by benches (E4) to measure
// the real message loads of the scheme.
#ifndef CCQ_KNEAREST_BINS_HPP
#define CCQ_KNEAREST_BINS_HPP

#include <string_view>

#include "ccq/clique/transport.hpp"
#include "ccq/common/parallel.hpp"
#include "ccq/matrix/sparse.hpp"

namespace ccq {

/// One iteration of Lemma 5.1 via the bin / h-combination scheme.
/// `filtered` must already be filtered to k entries per row (with diagonal
/// zeros).  Returns the k smallest entries per row of filtered^h.
/// Falls back to the broadcast branch when the scheme is degenerate for
/// (n, k, h), exactly as the paper prescribes (Section 5.2, assumptions);
/// `engine` drives the local filtered power of that branch.
[[nodiscard]] SparseMatrix knearest_iteration_bins(const SparseMatrix& filtered, int k, int h,
                                                   CliqueTransport& transport,
                                                   std::string_view phase,
                                                   const EngineConfig& engine = {});

} // namespace ccq

#endif // CCQ_KNEAREST_BINS_HPP
