// Fast computation of the k-nearest nodes (paper Section 5).
//
// Lemma 5.1: for k ∈ O(n^{1/h}), the h-hop distances to the k nearest
// nodes are computable in O(1) rounds.  Lemma 5.2 iterates this i times to
// cover h^i hops in O(i) rounds.  Combined with a k-nearest h^i-hopset
// this yields exact k-nearest distances (Lemma 3.3).
//
// The computation is filtered min-plus exponentiation: keep the k
// smallest entries per row (ties by id), raise to the h-th power, filter
// again; Lemma 5.5 guarantees no information about the k nearest is lost.
//
// Two execution paths produce identical rows:
//  * fast path — local filtered powers, rounds charged analytically from
//    the bin-scheme loads;
//  * faithful path (bins.hpp) — actually routes the bin / h-combination
//    messages of Section 5.2 through the simulated clique.
#ifndef CCQ_KNEAREST_KNEAREST_HPP
#define CCQ_KNEAREST_KNEAREST_HPP

#include <cstdint>
#include <string_view>

#include "ccq/clique/transport.hpp"
#include "ccq/common/parallel.hpp"
#include "ccq/matrix/sparse.hpp"

namespace ccq {

struct KNearestOptions {
    int k = 1;          ///< how many nearest nodes per node
    int h = 2;          ///< per-iteration hop base (k should be O(n^{1/h}))
    int iterations = 1; ///< i of Lemma 5.2; covers h^i hops total
    bool faithful_bins = false; ///< route the real Section 5.2 messages
    EngineConfig engine;        ///< local min-plus execution strategy
};

/// Parameters of the Section 5.2 bin scheme for (n, k, h).
struct BinSchemeParams {
    std::int64_t p = 0;        ///< number of bins: floor(n^{1/h} * h/4)
    std::int64_t bin_size = 0; ///< ceil(n*k/p) list entries per bin
    std::int64_t p_effective = 0; ///< bins actually populated
    std::int64_t combination_count = 0; ///< h * C(p_eff, h), saturated
    bool degenerate = false; ///< p < h, bin_size <= k, or combos > n:
                             ///< fall back to broadcasting the k-lists
};

[[nodiscard]] BinSchemeParams bin_scheme_params(int n, int k, int h);

struct KNearestResult {
    SparseMatrix rows;           ///< per node u: k smallest (dist, id) of A^{h^i}
    std::int64_t hop_budget = 1; ///< h^iterations (saturated)
    bool used_degenerate_broadcast = false;
};

/// Runs `iterations` filtered-power steps on `adjacency` (which must
/// contain diagonal zeros, i.e. come from adjacency_rows(g, true) or
/// augmented_rows).  Rounds are charged per iteration: O(1) each in the
/// non-degenerate regime, matching Lemma 5.3.
[[nodiscard]] KNearestResult compute_k_nearest(const SparseMatrix& adjacency,
                                               const KNearestOptions& options,
                                               CliqueTransport& transport,
                                               std::string_view phase);

} // namespace ccq

#endif // CCQ_KNEAREST_KNEAREST_HPP
