#include "ccq/spanner/greedy.hpp"

#include <algorithm>
#include <queue>
#include <utility>

namespace ccq {
namespace {

/// Distance from `source` in the partial spanner, pruned at `budget`
/// (early exit once the candidate edge is provably needed/unneeded).
Weight bounded_distance(const Graph& spanner, NodeId source, NodeId target, Weight budget)
{
    std::vector<Weight> dist(static_cast<std::size_t>(spanner.node_count()), kInfinity);
    dist[static_cast<std::size_t>(source)] = 0;
    using Item = std::pair<Weight, NodeId>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
    queue.emplace(0, source);
    while (!queue.empty()) {
        const auto [d, u] = queue.top();
        queue.pop();
        if (d != dist[static_cast<std::size_t>(u)]) continue;
        if (u == target) return d;
        if (d > budget) return kInfinity; // everything further is over budget
        for (const Edge& e : spanner.neighbors(u)) {
            const Weight cand = saturating_add(d, e.weight);
            if (cand > budget) continue;
            Weight& cur = dist[static_cast<std::size_t>(e.to)];
            if (cand < cur) {
                cur = cand;
                queue.emplace(cand, e.to);
            }
        }
    }
    return dist[static_cast<std::size_t>(target)];
}

} // namespace

SpannerResult greedy_spanner(const Graph& g, int k)
{
    CCQ_EXPECT(!g.is_directed(), "greedy_spanner: undirected input required");
    CCQ_EXPECT(k >= 1, "greedy_spanner: k must be >= 1");
    const int stretch = 2 * k - 1;

    std::vector<WeightedEdge> edges = g.simplified().edge_list();
    std::sort(edges.begin(), edges.end(), [](const WeightedEdge& a, const WeightedEdge& b) {
        if (a.weight != b.weight) return a.weight < b.weight;
        if (a.u != b.u) return a.u < b.u;
        return a.v < b.v;
    });

    Graph spanner = Graph::undirected(g.node_count());
    for (const WeightedEdge& e : edges) {
        const Weight budget = e.weight * stretch;
        if (bounded_distance(spanner, e.u, e.v, budget) > budget)
            spanner.add_edge(e.u, e.v, e.weight);
    }
    return SpannerResult{std::move(spanner), stretch, k};
}

} // namespace ccq
