#include "ccq/spanner/baswana_sen.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "ccq/graph/exact.hpp"

namespace ccq {
namespace {

/// Lightest edge from `v` into each start-of-phase cluster among `alive`
/// neighbors; deterministic tie-breaking by (weight, neighbor id).
std::map<NodeId, Edge> lightest_edge_per_cluster(const Graph& g, NodeId v,
                                                 const std::vector<NodeId>& cluster)
{
    std::map<NodeId, Edge> best;
    for (const Edge& e : g.neighbors(v)) {
        if (e.to == v) continue;
        const NodeId c = cluster[static_cast<std::size_t>(e.to)];
        if (c < 0) continue; // neighbor no longer clustered
        auto [it, inserted] = best.try_emplace(c, e);
        if (!inserted && weight_id_less(e.weight, e.to, it->second.weight, it->second.to))
            it->second = e;
    }
    return best;
}

} // namespace

SpannerResult baswana_sen_spanner(const Graph& g, int k, Rng& rng)
{
    CCQ_EXPECT(!g.is_directed(), "baswana_sen_spanner: undirected input required");
    CCQ_EXPECT(k >= 1, "baswana_sen_spanner: k must be >= 1");
    const int n = g.node_count();
    if (k == 1 || n <= 2) {
        return SpannerResult{g.simplified(), 1, 1};
    }

    const double sample_probability = std::pow(static_cast<double>(n), -1.0 / k);

    // cluster[v]: id of v's cluster center, or -1 once v is discarded.
    std::vector<NodeId> cluster(static_cast<std::size_t>(n));
    for (NodeId v = 0; v < n; ++v) cluster[static_cast<std::size_t>(v)] = v;

    std::set<std::pair<NodeId, NodeId>> chosen; // spanner edge keys (u <= v)
    std::vector<WeightedEdge> spanner_edges;
    const auto add_edge = [&](NodeId u, const Edge& e) {
        const NodeId a = std::min(u, e.to), b = std::max(u, e.to);
        if (chosen.insert({a, b}).second) spanner_edges.push_back(WeightedEdge{a, b, e.weight});
    };

    for (int phase = 1; phase <= k - 1; ++phase) {
        // Sample surviving cluster centers.
        std::set<NodeId> centers;
        for (NodeId v = 0; v < n; ++v) {
            const NodeId c = cluster[static_cast<std::size_t>(v)];
            if (c >= 0) centers.insert(c);
        }
        std::set<NodeId> sampled;
        for (const NodeId c : centers)
            if (rng.bernoulli(sample_probability)) sampled.insert(c);

        const std::vector<NodeId> cluster_before = cluster;
        for (NodeId v = 0; v < n; ++v) {
            const NodeId own = cluster_before[static_cast<std::size_t>(v)];
            if (own < 0) continue;            // already discarded
            if (sampled.contains(own)) continue; // survives as-is

            const std::map<NodeId, Edge> best = lightest_edge_per_cluster(g, v, cluster_before);

            // Lightest edge into any *sampled* cluster.
            const Edge* to_sampled = nullptr;
            NodeId sampled_cluster = -1;
            for (const auto& [c, e] : best) {
                if (!sampled.contains(c)) continue;
                if (to_sampled == nullptr ||
                    weight_id_less(e.weight, e.to, to_sampled->weight, to_sampled->to)) {
                    to_sampled = &e;
                    sampled_cluster = c;
                }
            }

            if (to_sampled != nullptr) {
                // Join the nearest sampled cluster; keep strictly lighter
                // edges into other clusters.
                add_edge(v, *to_sampled);
                cluster[static_cast<std::size_t>(v)] = sampled_cluster;
                for (const auto& [c, e] : best) {
                    if (c == sampled_cluster) continue;
                    if (weight_id_less(e.weight, e.to, to_sampled->weight, to_sampled->to))
                        add_edge(v, e);
                }
            } else {
                // No sampled neighbor cluster: keep one edge per adjacent
                // cluster and retire from clustering.
                for (const auto& [c, e] : best) {
                    (void)c;
                    add_edge(v, e);
                }
                cluster[static_cast<std::size_t>(v)] = -1;
            }
        }
    }

    // Final phase: every node connects to each surviving adjacent cluster.
    for (NodeId v = 0; v < n; ++v) {
        const std::map<NodeId, Edge> best = lightest_edge_per_cluster(g, v, cluster);
        for (const auto& [c, e] : best) {
            if (c == cluster[static_cast<std::size_t>(v)]) continue;
            add_edge(v, e);
        }
    }

    Graph spanner = graph_from_edges(n, Orientation::undirected, spanner_edges);
    return SpannerResult{std::move(spanner), 2 * k - 1, k};
}

double measured_spanner_stretch(const Graph& g, const Graph& spanner, int sample_sources)
{
    CCQ_EXPECT(g.node_count() == spanner.node_count(),
               "measured_spanner_stretch: node count mismatch");
    const int n = g.node_count();
    double worst = 1.0;
    const int step = sample_sources > 0 ? std::max(1, n / sample_sources) : 1;
    for (NodeId s = 0; s < n; s += step) {
        const std::vector<Weight> dg = dijkstra_from(g, s);
        const std::vector<Weight> ds = dijkstra_from(spanner, s);
        for (NodeId v = 0; v < n; ++v) {
            const Weight a = dg[static_cast<std::size_t>(v)];
            const Weight b = ds[static_cast<std::size_t>(v)];
            if (!is_finite(a) || a == 0) continue;
            CCQ_CHECK(is_finite(b), "spanner must preserve connectivity");
            worst = std::max(worst, static_cast<double>(b) / static_cast<double>(a));
        }
    }
    return worst;
}

} // namespace ccq
