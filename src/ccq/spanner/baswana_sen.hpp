// Multiplicative spanners (substrate for Lemma 7.1).
//
// The paper consumes the CZ22 constant-round spanner constructions as a
// black box: a (2k-1)-spanner with O(k n^{1+1/k}) edges (Lemma 7.1, second
// bullet).  We substitute the classic Baswana–Sen clustering algorithm,
// which constructs exactly that object (same stretch, same size class,
// w.h.p.); only the internal round count of the construction differs,
// which the composed algorithms treat as O(1) via the cost model
// (DESIGN.md "Documented substitutions").
#ifndef CCQ_SPANNER_BASWANA_SEN_HPP
#define CCQ_SPANNER_BASWANA_SEN_HPP

#include "ccq/common/rng.hpp"
#include "ccq/graph/graph.hpp"

namespace ccq {

struct SpannerResult {
    Graph spanner;           ///< subgraph of the input on the same node set
    int stretch_bound = 1;   ///< guaranteed multiplicative stretch (2k-1)
    int parameter_k = 1;     ///< the k used
};

/// Baswana–Sen (2k-1)-spanner of an undirected weighted graph.
/// Expected edge count O(k n^{1+1/k}).  k >= 1; k = 1 returns the
/// (simplified) input graph.
[[nodiscard]] SpannerResult baswana_sen_spanner(const Graph& g, int k, Rng& rng);

/// Verification helper: max over sampled pairs of
/// d_spanner(u,v) / d_g(u,v).  Exact (all pairs) when sample_sources <= 0.
[[nodiscard]] double measured_spanner_stretch(const Graph& g, const Graph& spanner,
                                              int sample_sources = 0);

} // namespace ccq

#endif // CCQ_SPANNER_BASWANA_SEN_HPP
