// Spanner-broadcast APSP approximations (paper Corollaries 7.1 and 7.2).
//
// Corollary 7.1: for a subgraph G_S on N ∈ O(n^{1-1/b}) nodes, build a
// (2b-1)-spanner, broadcast its O(N^{1+1/b}) ⊆ O(n) edges to everyone,
// and let each node solve shortest paths on the spanner locally — a
// (2b-1)-approximation of APSP on G_S in O(1) rounds.
//
// Corollary 7.2 is the G_S = G special case with b ≈ (log n)/3, the
// O(log n)-approximation in O(1) rounds that bootstraps every composed
// algorithm (and is itself the CZ22 baseline of experiment E1).
#ifndef CCQ_SPANNER_SPANNER_APSP_HPP
#define CCQ_SPANNER_SPANNER_APSP_HPP

#include <string_view>

#include "ccq/clique/transport.hpp"
#include "ccq/common/parallel.hpp"
#include "ccq/common/rng.hpp"
#include "ccq/graph/graph.hpp"
#include "ccq/matrix/dense.hpp"

namespace ccq {

struct SubgraphApspResult {
    DistanceMatrix estimate;     ///< indexed by the subgraph's node ids
    double claimed_stretch = 1.0;
    std::size_t spanner_edges = 0;
};

/// Corollary 7.1: (2b-1)-approximation of APSP on `sub` via spanner
/// broadcast.  `transport` belongs to the ambient clique doing the
/// broadcasting.  Broadcast rounds are charged at the cited CZ22 spanner
/// size O(N^{1+1/b}) when the Baswana–Sen substitute overshoots it
/// (DESIGN.md, documented substitutions).
[[nodiscard]] SubgraphApspResult apsp_via_spanner(const Graph& sub, int b, Rng& rng,
                                                  CliqueTransport& transport,
                                                  std::string_view phase,
                                                  const EngineConfig& engine = {});

/// Exact APSP on `sub` by broadcasting *all* its edges (used when the
/// skeleton is small enough or bandwidth is widened; l = 1).
[[nodiscard]] SubgraphApspResult apsp_via_full_broadcast(const Graph& sub,
                                                         CliqueTransport& transport,
                                                         std::string_view phase,
                                                         const EngineConfig& engine = {});

/// Corollary 7.2: b for an (alpha log n)-approximation on an n-node graph.
[[nodiscard]] int logn_spanner_parameter(int n, double alpha = 1.0);

} // namespace ccq

#endif // CCQ_SPANNER_SPANNER_APSP_HPP
