#include "ccq/spanner/spanner_apsp.hpp"

#include <algorithm>
#include <cmath>

#include "ccq/common/math.hpp"
#include "ccq/graph/exact.hpp"
#include "ccq/spanner/baswana_sen.hpp"

namespace ccq {

SubgraphApspResult apsp_via_spanner(const Graph& sub, int b, Rng& rng,
                                    CliqueTransport& transport, std::string_view phase,
                                    const EngineConfig& engine)
{
    CCQ_EXPECT(b >= 1, "apsp_via_spanner: b must be >= 1");
    PhaseScope scope(transport.ledger(), phase);
    const int n = sub.node_count();

    const SpannerResult spanner = baswana_sen_spanner(sub, b, rng);
    transport.charge_constant_round_spanner("build-spanner");

    // Broadcast the spanner: 3 words per edge, charged at the cited CZ22
    // size bound when Baswana–Sen exceeds it (substitution note).
    const auto cited_edge_bound = static_cast<std::uint64_t>(
        4.0 * std::pow(static_cast<double>(std::max(1, n)), 1.0 + 1.0 / b));
    const std::uint64_t broadcast_edges =
        std::min<std::uint64_t>(spanner.spanner.edge_count(), cited_edge_bound);
    transport.charge_broadcast_from("broadcast-spanner", 3 * broadcast_edges);

    // Every node now solves shortest paths on the spanner locally.
    SubgraphApspResult result;
    result.estimate = exact_apsp(spanner.spanner, engine);
    result.claimed_stretch = spanner.stretch_bound;
    result.spanner_edges = spanner.spanner.edge_count();
    transport.note_local_computation("local-dijkstra");
    return result;
}

SubgraphApspResult apsp_via_full_broadcast(const Graph& sub, CliqueTransport& transport,
                                           std::string_view phase,
                                           const EngineConfig& engine)
{
    PhaseScope scope(transport.ledger(), phase);
    transport.charge_broadcast_from("broadcast-edges",
                                    3 * static_cast<std::uint64_t>(sub.edge_count()));
    SubgraphApspResult result;
    result.estimate = exact_apsp(sub, engine);
    result.claimed_stretch = 1.0;
    result.spanner_edges = sub.edge_count();
    transport.note_local_computation("local-dijkstra");
    return result;
}

int logn_spanner_parameter(int n, double alpha)
{
    CCQ_EXPECT(alpha > 0.0, "logn_spanner_parameter: alpha must be positive");
    if (n < 2) return 1;
    const int b = static_cast<int>(alpha * ceil_log2(n) / 3.0);
    return std::max(1, b);
}

} // namespace ccq
