// Greedy (2k-1)-spanner (Althöfer et al.) — the quality ceiling for the
// spanner substrate.
//
// Processes edges by increasing weight and keeps an edge only if the
// spanner built so far cannot connect its endpoints within (2k-1) times
// its weight.  Guarantees (2k-1) stretch with O(n^{1+1/k}) edges — the
// same size class Lemma 7.1's first bullet cites — but needs a global
// edge ordering, so it is *not* a constant-round construction; it serves
// as the ablation baseline quantifying what the distributed Baswana–Sen
// substitute gives up (bench A3 / E6).
#ifndef CCQ_SPANNER_GREEDY_HPP
#define CCQ_SPANNER_GREEDY_HPP

#include "ccq/spanner/baswana_sen.hpp"

namespace ccq {

/// Greedy (2k-1)-spanner.  Deterministic; O(m (n log n + m)) worst case,
/// intended for ablation at bench scales.
[[nodiscard]] SpannerResult greedy_spanner(const Graph& g, int k);

} // namespace ccq

#endif // CCQ_SPANNER_GREEDY_HPP
