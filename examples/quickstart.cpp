// Quickstart: run the paper's headline algorithm (Theorem 1.1) on a random
// graph and compare against the exact distances and the prior-work
// baselines it improves upon.
#include <cstdio>

#include "ccq/apsp.hpp"

int main()
{
    using namespace ccq;
    Rng rng(2024);
    const Graph g = erdos_renyi(192, 0.05, WeightRange{1, 100}, rng);
    const DistanceMatrix exact = exact_apsp(g);

    const auto show = [&](const ApspResult& r) {
        const StretchReport report = evaluate_stretch(exact, r.estimate);
        std::printf("%-18s rounds=%8.1f  claimed<=%7.1f  measured max=%5.2f avg=%4.2f  sound=%s\n",
                    r.algorithm.c_str(), r.ledger.total_rounds(), r.claimed_stretch,
                    report.max_stretch, report.avg_stretch, report.sound() ? "yes" : "NO");
    };

    std::printf("n=%d m=%zu diameter(w)=%lld\n", g.node_count(), g.edge_count(),
                static_cast<long long>(weighted_diameter(g)));
    show(exact_apsp_clique(g));      // prior work: exact, polynomial rounds
    show(logn_approx_apsp(g));       // prior work: O(log n)-approx, O(1) rounds
    show(apsp_loglog(g));            // Section 3.2: O(log log n) rounds
    show(apsp_small_diameter(g));    // Theorem 7.1
    show(apsp_large_bandwidth(g));   // Theorem 8.1
    show(apsp_general(g));           // Theorem 1.1 (headline)
    show(apsp_tradeoff(g, 1));       // Theorem 1.2, t = 1
    return 0;
}
