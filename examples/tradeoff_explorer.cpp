// Example: exploring the Theorem 1.2 round/approximation tradeoff.
//
//   tradeoff_explorer [n] [seed] [t_max]
//
// Sweeps the reduction budget t and prints, per t: the theoretical shape
// O(log^{2^-t} n), the guarantee the execution accumulated, the measured
// stretch, and the simulated rounds — the dial a deployment would turn
// when it can afford a few more rounds for better routes.
#include <cstdio>
#include <cstdlib>

#include "ccq/apsp.hpp"

int main(int argc, char** argv)
{
    using namespace ccq;
    const int n = argc > 1 ? std::atoi(argv[1]) : 160;
    const std::uint64_t seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 9;
    const int t_max = argc > 3 ? std::atoi(argv[3]) : 4;
    if (n < 4 || t_max < 0) {
        std::fprintf(stderr, "usage: %s [n>=4] [seed] [t_max>=0]\n", argv[0]);
        return 2;
    }

    Rng rng(seed);
    const Graph g = erdos_renyi(n, 6.0 / n, WeightRange{1, 1000}, rng);
    const DistanceMatrix truth = exact_apsp(g);
    std::printf("instance: n=%d m=%zu seed=%llu\n", g.node_count(), g.edge_count(),
                static_cast<unsigned long long>(seed));
    std::printf("\n%4s %16s %12s %12s %10s\n", "t", "shape log^(2^-t)n", "guarantee",
                "measured", "rounds");
    for (int t = 0; t <= t_max; ++t) {
        ApspOptions options;
        options.seed = seed;
        const ApspResult result = apsp_tradeoff(g, t, options);
        const StretchReport report = evaluate_stretch(truth, result.estimate);
        std::printf("%4d %16.2f %12.1f %12.2f %10.1f\n", t,
                    tradeoff_stretch_shape(g.node_count(), t), result.claimed_stretch,
                    report.max_stretch, result.ledger.total_rounds());
        if (!report.sound()) {
            std::fprintf(stderr, "UNSOUND estimate at t=%d\n", t);
            return 1;
        }
    }
    std::printf("\nnote: at simulable n the guarantee saturates at the constant-factor\n"
                "regime quickly (see EXPERIMENTS.md, E2); the shape column shows the\n"
                "asymptotic prediction that distinguishes budgets at scale.\n");
    return 0;
}
