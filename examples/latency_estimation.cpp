// Example: cross-datacenter latency estimation.
//
// Scenario: a fleet of points of presence on a map (random geometric
// graph; edge weights ~ geographic latency).  A monitoring plane wants
// all-pairs latency estimates quickly, trading accuracy for rounds.  This
// example runs the whole algorithm ladder through the DistanceOracle
// facade and prints the measured accuracy next to each algorithm's
// guarantee and simulated round cost — the Table the paper's theorems
// predict, on one concrete deployment.
#include <cstdio>

#include "ccq/apsp.hpp"

int main()
{
    using namespace ccq;
    Rng rng(42);
    const int n = 160;
    const Graph fleet = random_geometric(n, 0.18, WeightRange{1, 250}, rng);
    const DistanceMatrix truth = exact_apsp(fleet);
    std::printf("fleet: %d PoPs, %zu measured links, latency diameter %lld\n",
                fleet.node_count(), fleet.edge_count(),
                static_cast<long long>(weighted_diameter(truth)));

    std::printf("\n%-16s %10s %12s %10s %10s\n", "algorithm", "rounds", "guarantee",
                "worst-err", "mean-err");
    const ApspAlgorithmKind ladder[] = {
        ApspAlgorithmKind::exact_baseline, ApspAlgorithmKind::logn_baseline,
        ApspAlgorithmKind::loglog,         ApspAlgorithmKind::small_diameter,
        ApspAlgorithmKind::large_bandwidth, ApspAlgorithmKind::general,
    };
    for (const ApspAlgorithmKind kind : ladder) {
        const DistanceOracle oracle(fleet, kind);
        const StretchReport report = evaluate_stretch(truth, oracle.result().estimate);
        std::printf("%-16s %10.1f %11.1fx %9.2fx %9.2fx%s\n", algorithm_kind_name(kind),
                    oracle.simulated_rounds(), oracle.claimed_stretch(), report.max_stretch,
                    report.avg_stretch, report.sound() ? "" : "  UNSOUND");
    }

    // Spot queries through the facade.
    const DistanceOracle oracle(fleet, ApspAlgorithmKind::general);
    std::printf("\nspot checks (general):\n");
    for (const auto& [u, v] : {std::pair<NodeId, NodeId>{0, n - 1}, {3, n / 2}}) {
        std::printf("  latency(%d, %d): estimate=%lld true=%lld\n", u, v,
                    static_cast<long long>(oracle.distance(u, v)),
                    static_cast<long long>(truth.at(u, v)));
    }
    return 0;
}
