// Example: approximate network routing (the paper's motivating
// application, Section 1).
//
// Scenario: a clustered wide-area network — dense regional pods joined by
// heavy long-haul links.  Exact all-pairs routing state is expensive to
// compute in rounds; instead every node learns an O(1)-round spanner
// backbone, builds next-hop tables locally, and forwards greedily.  We
// verify that the realized routes stay within the spanner's stretch.
#include <cstdio>

#include "ccq/apsp.hpp"
#include "ccq/serve/query_engine.hpp"
#include "ccq/serve/snapshot.hpp"
#include "ccq/spanner/baswana_sen.hpp"

int main()
{
    using namespace ccq;
    Rng rng(7);
    const int n = 96;
    const Graph network =
        clustered_graph(n, /*clusters=*/6, /*p_in=*/0.5, /*p_out=*/0.01, WeightRange{1, 10},
                        /*bridge_factor=*/12, rng);
    std::printf("WAN: %d routers, %zu links\n", network.node_count(), network.edge_count());

    // Backbone: (2k-1)-spanner, broadcast once (O(1) rounds in the model).
    const SpannerResult backbone = baswana_sen_spanner(network, 3, rng);
    std::printf("backbone: %zu links kept (stretch bound %d)\n",
                backbone.spanner.edge_count(), backbone.stretch_bound);

    const RoutingTables tables = build_routing_tables(backbone.spanner);
    const DistanceMatrix exact = exact_apsp(network);

    // Route a few representative flows and report their realized stretch.
    std::printf("\n%-12s %-28s %8s %8s %8s\n", "flow", "route", "hops", "length", "stretch");
    double worst = 1.0;
    for (const auto& [src, dst] : {std::pair<NodeId, NodeId>{0, 95}, {1, 50}, {7, 88}, {13, 41}}) {
        const std::vector<NodeId> route = tables.route(src, dst);
        const Weight len = route_length(network, route);
        const double stretch =
            static_cast<double>(len) / static_cast<double>(exact.at(src, dst));
        worst = std::max(worst, stretch);
        std::string shown;
        for (std::size_t i = 0; i < route.size(); ++i) {
            if (i > 0) shown += ">";
            shown += std::to_string(route[i]);
            if (shown.size() > 24) {
                shown += "...";
                break;
            }
        }
        std::printf("%3d -> %-4d  %-28s %8zu %8lld %8.2f\n", src, dst, shown.c_str(),
                    route.size() - 1, static_cast<long long>(len), stretch);
    }

    // Global verification across all pairs.
    double global_worst = 1.0;
    for (NodeId u = 0; u < n; ++u)
        for (NodeId v = 0; v < n; ++v) {
            if (u == v || !is_finite(exact.at(u, v))) continue;
            const Weight len = route_length(network, tables.route(u, v));
            global_worst = std::max(global_worst, static_cast<double>(len) /
                                                      static_cast<double>(exact.at(u, v)));
        }
    std::printf("\nworst route stretch over all %d^2 flows: %.2f (bound %d)\n", n, global_worst,
                backbone.stretch_bound);
    if (global_worst > backbone.stretch_bound) return 1;

    // Build-once / serve-many: persist the oracle (distances + tables) as
    // a snapshot, reload it, and re-answer the same flows from the copy.
    ApspResult to_persist;
    to_persist.estimate = exact;
    to_persist.claimed_stretch = 1.0;
    to_persist.algorithm = "exact+spanner-routing";
    const char* snapshot_path = "routing_tables.snap";
    save_snapshot(snapshot_path,
                  OracleSnapshot::from_result(network, to_persist, /*build_seed=*/7, &tables));
    const QueryEngine engine(load_snapshot(snapshot_path));
    std::printf("\nsnapshot round-trip via %s (%d nodes, algorithm %s):\n", snapshot_path,
                engine.node_count(), engine.meta().algorithm.c_str());

    bool round_trip_ok = true;
    for (const auto& [src, dst] : {std::pair<NodeId, NodeId>{0, 95}, {1, 50}, {7, 88}, {13, 41}}) {
        const PathResult served = engine.path(src, dst);
        const bool same_route = served.nodes == tables.route(src, dst);
        const bool same_distance = engine.distance(src, dst) == exact.at(src, dst);
        round_trip_ok = round_trip_ok && same_route && same_distance;
        std::printf("%3d -> %-4d  served dist=%-6lld hops=%-3zu route %s, distance %s\n", src,
                    dst, static_cast<long long>(served.distance),
                    served.nodes.empty() ? 0 : served.nodes.size() - 1,
                    same_route ? "identical" : "DIFFERS",
                    same_distance ? "identical" : "DIFFERS");
    }
    std::remove(snapshot_path);
    std::printf("round-trip: %s\n", round_trip_ok ? "every answer identical" : "MISMATCH");
    return round_trip_ok ? 0 : 1;
}
