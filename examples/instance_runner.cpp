// Example: run the library on an instance file.
//
//   instance_runner <graph-file> [algorithm]
//
// Reads the DIMACS-like format of ccq/graph/io.hpp, runs the selected
// algorithm (default: Theorem 1.1), and prints the estimate summary plus
// the per-phase round ledger.  With no arguments, generates, saves, and
// re-loads a demo instance to show the I/O round trip.
#include <cstdio>
#include <cstring>
#include <string>

#include "ccq/apsp.hpp"

namespace {

ccq::ApspAlgorithmKind parse_kind(const char* name)
{
    using ccq::ApspAlgorithmKind;
    const std::pair<const char*, ApspAlgorithmKind> kinds[] = {
        {"exact", ApspAlgorithmKind::exact_baseline},
        {"logn", ApspAlgorithmKind::logn_baseline},
        {"loglog", ApspAlgorithmKind::loglog},
        {"small-diameter", ApspAlgorithmKind::small_diameter},
        {"large-bandwidth", ApspAlgorithmKind::large_bandwidth},
        {"general", ApspAlgorithmKind::general},
    };
    for (const auto& [key, kind] : kinds)
        if (std::strcmp(name, key) == 0) return kind;
    throw std::runtime_error(std::string("unknown algorithm: ") + name);
}

} // namespace

int main(int argc, char** argv)
{
    using namespace ccq;
    try {
        std::string path;
        if (argc > 1) {
            path = argv[1];
        } else {
            // Demo mode: write an instance, then proceed as if given it.
            path = "demo_instance.graph";
            Rng rng(123);
            const Graph demo = clustered_graph(80, 5, 0.4, 0.02, WeightRange{1, 50}, 6, rng);
            save_graph(path, demo, "ccq demo instance (clustered WAN)");
            std::printf("wrote demo instance to %s\n", path.c_str());
        }
        const Graph g = load_graph(path);
        const ApspAlgorithmKind kind = argc > 2 ? parse_kind(argv[2])
                                                : ApspAlgorithmKind::general;

        std::printf("loaded %s: n=%d m=%zu (%s)\n", path.c_str(), g.node_count(),
                    g.edge_count(), g.is_directed() ? "directed" : "undirected");
        const DistanceOracle oracle(g, kind);
        std::printf("algorithm: %s\n", oracle.algorithm().c_str());
        std::printf("guaranteed stretch: %.1f\n", oracle.claimed_stretch());
        std::printf("simulated rounds: %.1f\n\nround ledger:\n%s", oracle.simulated_rounds(),
                    oracle.result().ledger.report().c_str());

        // Estimate quality against ground truth (feasible at example sizes).
        const StretchReport report =
            evaluate_stretch(exact_apsp(g), oracle.result().estimate);
        std::printf("measured stretch: max=%.2f avg=%.2f sound=%s\n", report.max_stretch,
                    report.avg_stretch, report.sound() ? "yes" : "NO");
        return report.sound() ? 0 : 1;
    } catch (const std::exception& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 2;
    }
}
